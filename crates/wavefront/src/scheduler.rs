//! Tile schedulers: the paper's **dynamic wavefront** (work queue +
//! atomic dependency tracking, §IV-A) and the preliminary version's
//! **static wavefront** (barrier per anti-diagonal) kept as the Fig. 6
//! comparison baseline.

use crate::grid::{TileGrid, TileId};
use crossbeam::deque::{Injector, Steal};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Runs `compute` over every tile respecting wavefront dependencies,
/// scheduling ready tiles through a shared lock-free queue
/// (paper: "submatrices are scheduled in a thread-safe queue which allows
/// threads to add and extract work items concurrently").
///
/// `make_scratch` builds one per-worker scratch value; `compute` may pull
/// up to `batch` ready tiles at once (the SIMD backend fills vector lanes
/// with independent tiles this way — paper Fig. 3; with fewer than
/// `batch` tiles available it receives a short slice and is expected to
/// fall back to the scalar path). Returns the scratch values for
/// result merging.
///
/// The completion and queuing status of all submatrices is tracked in
/// preallocated arrays of atomic flags, exactly as the paper describes.
pub fn run_dynamic<W, M, F>(
    grid: &TileGrid,
    threads: usize,
    batch: usize,
    make_scratch: M,
    compute: F,
) -> Vec<W>
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &[TileId]) + Sync,
{
    assert!(threads >= 1 && batch >= 1);
    let deps: Vec<AtomicU8> = (0..grid.total())
        .map(|idx| {
            let t = TileId {
                ti: (idx / grid.mt) as u32,
                tj: (idx % grid.mt) as u32,
            };
            AtomicU8::new(grid.initial_deps(t))
        })
        .collect();
    let remaining = AtomicUsize::new(grid.total());
    let queue: Injector<TileId> = Injector::new();
    queue.push(TileId { ti: 0, tj: 0 });

    let release = |t: TileId| {
        // Decrement each successor's dependency count; the one that
        // reaches zero enqueues it (release/acquire pairing makes the
        // producer's border writes visible to the consumer).
        if (t.tj as usize) + 1 < grid.mt {
            let right = TileId {
                ti: t.ti,
                tj: t.tj + 1,
            };
            if deps[grid.index(right)].fetch_sub(1, Ordering::AcqRel) == 1 {
                queue.push(right);
            }
        }
        if (t.ti as usize) + 1 < grid.nt {
            let down = TileId {
                ti: t.ti + 1,
                tj: t.tj,
            };
            if deps[grid.index(down)].fetch_sub(1, Ordering::AcqRel) == 1 {
                queue.push(down);
            }
        }
    };

    let mut scratches = Vec::with_capacity(threads);
    std::thread::scope(|sc| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(sc.spawn(|| {
                let mut scratch = make_scratch();
                let mut ready: Vec<TileId> = Vec::with_capacity(batch);
                loop {
                    ready.clear();
                    // Pull up to `batch` ready tiles.
                    while ready.len() < batch {
                        match queue.steal() {
                            Steal::Success(t) => ready.push(t),
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                    if ready.is_empty() {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    compute(&mut scratch, &ready);
                    for &t in &ready {
                        release(t);
                    }
                    remaining.fetch_sub(ready.len(), Ordering::AcqRel);
                }
                scratch
            }));
        }
        for h in handles {
            scratches.push(h.join().expect("wavefront worker panicked"));
        }
    });
    debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
    scratches
}

/// Runs `compute` with a **static** wavefront: every anti-diagonal is
/// split evenly among the threads, followed by a barrier — the schedule
/// of the paper's preliminary AnySeq version and of Parasail, reproduced
/// as the Fig. 6 baseline. Load imbalance (short diagonals near the
/// corners, uneven tile costs) and the `O(diagonals)` barriers are the
/// point: do not use this for real work.
pub fn run_static<W, M, F>(grid: &TileGrid, threads: usize, make_scratch: M, compute: F) -> Vec<W>
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &[TileId]) + Sync,
{
    assert!(threads >= 1);
    let barrier = Barrier::new(threads);
    let mut scratches = Vec::with_capacity(threads);
    std::thread::scope(|sc| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let barrier = &barrier;
            let compute = &compute;
            let make_scratch = &make_scratch;
            handles.push(sc.spawn(move || {
                let mut scratch = make_scratch();
                for d in 0..grid.diagonals() {
                    let tiles: Vec<TileId> = grid.diagonal(d).collect();
                    // Fixed round-robin assignment, no stealing.
                    for t in tiles
                        .iter()
                        .skip(worker)
                        .step_by(threads)
                        .copied()
                        .collect::<Vec<_>>()
                    {
                        compute(&mut scratch, &[t]);
                    }
                    barrier.wait();
                }
                scratch
            }));
        }
        for h in handles {
            scratches.push(h.join().expect("static wavefront worker panicked"));
        }
    });
    scratches
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;

    fn check_order(order: &[TileId], grid: &TileGrid) {
        // Every tile exactly once, and each tile appears after its deps.
        let mut pos = vec![usize::MAX; grid.total()];
        for (k, &t) in order.iter().enumerate() {
            assert_eq!(pos[grid.index(t)], usize::MAX, "tile computed twice");
            pos[grid.index(t)] = k;
        }
        assert!(pos.iter().all(|&p| p != usize::MAX), "missing tiles");
        for ti in 0..grid.nt as u32 {
            for tj in 0..grid.mt as u32 {
                let p = pos[grid.index(TileId { ti, tj })];
                if ti > 0 {
                    assert!(pos[grid.index(TileId { ti: ti - 1, tj })] < p);
                }
                if tj > 0 {
                    assert!(pos[grid.index(TileId { ti, tj: tj - 1 })] < p);
                }
            }
        }
    }

    #[test]
    fn dynamic_respects_dependencies() {
        let grid = TileGrid::new(97, 130, 16);
        for threads in [1, 2, 8] {
            let log = Mutex::new(Vec::new());
            run_dynamic(
                &grid,
                threads,
                1,
                || (),
                |_, tiles| {
                    log.lock().extend_from_slice(tiles);
                },
            );
            check_order(&log.into_inner(), &grid);
        }
    }

    #[test]
    fn dynamic_batch_pop_still_valid() {
        let grid = TileGrid::new(257, 257, 16);
        for batch in [2, 4, 16] {
            let log = Mutex::new(Vec::new());
            run_dynamic(
                &grid,
                4,
                batch,
                || (),
                |_, tiles| {
                    assert!(!tiles.is_empty() && tiles.len() <= batch);
                    // Batched tiles must be pairwise independent (no tile
                    // an ancestor of another): tiles popped together are
                    // all "ready", which for a wavefront means no two on
                    // the same row path... verify weaker: distinct.
                    let set: HashSet<_> = tiles.iter().map(|t| grid.index(*t)).collect();
                    assert_eq!(set.len(), tiles.len());
                    log.lock().extend_from_slice(tiles);
                },
            );
            check_order(&log.into_inner(), &grid);
        }
    }

    #[test]
    fn static_respects_dependencies() {
        let grid = TileGrid::new(100, 60, 8);
        for threads in [1, 3, 6] {
            let log = Mutex::new(Vec::new());
            run_static(
                &grid,
                threads,
                || (),
                |_, tiles| {
                    log.lock().extend_from_slice(tiles);
                },
            );
            check_order(&log.into_inner(), &grid);
        }
    }

    #[test]
    fn scratches_returned_per_worker() {
        let grid = TileGrid::new(64, 64, 8);
        let scratches = run_dynamic(&grid, 4, 1, || 0usize, |count, tiles| *count += tiles.len());
        assert_eq!(scratches.len(), 4);
        assert_eq!(scratches.iter().sum::<usize>(), grid.total());
    }
}
