//! Parallel alignment entry points: a [`HalfPass`] provider backed by the
//! tiled wavefront pass (so the Hirschberg recursion's dominant passes run
//! multithreaded), plus an extension trait grafting `score_parallel` /
//! `align_parallel` onto [`Scheme`].

use crate::pass::{tiled_score_pass, ParallelCfg};
use anyseq_core::alignment::Alignment;
use anyseq_core::hirschberg::{align_with_pass, AlignConfig, HalfPass};
use anyseq_core::kind::AlignKind;
use anyseq_core::pass::PassOutput;
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_seq::Seq;

/// Pass provider running every sufficiently large pass through the
/// dynamic wavefront.
#[derive(Debug, Clone, Copy)]
pub struct TiledPass {
    /// Parallel execution parameters.
    pub cfg: ParallelCfg,
}

impl<G: GapModel, S: SubstScore> HalfPass<G, S> for TiledPass {
    fn pass<K: AlignKind>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput {
        tiled_score_pass::<K, G, S>(gap, subst, q, s, tb, &self.cfg)
    }
}

/// Parallel execution methods for [`Scheme`].
///
/// The `*_codes` variants take borrowed code slices — the zero-copy
/// batch path (`PairRef` fields go straight through); the [`Seq`]
/// variants are thin conveniences over them.
pub trait ParallelExt {
    /// Score-only, multithreaded (dynamic wavefront).
    fn score_parallel(&self, q: &Seq, s: &Seq, cfg: &ParallelCfg) -> Score {
        self.score_parallel_codes(q.codes(), s.codes(), cfg)
    }
    /// Full traceback with multithreaded Hirschberg passes.
    fn align_parallel(&self, q: &Seq, s: &Seq, cfg: &ParallelCfg) -> Alignment {
        self.align_parallel_codes(q.codes(), s.codes(), cfg)
    }
    /// [`ParallelExt::score_parallel`] over borrowed code slices.
    fn score_parallel_codes(&self, q: &[u8], s: &[u8], cfg: &ParallelCfg) -> Score;
    /// [`ParallelExt::align_parallel`] over borrowed code slices.
    fn align_parallel_codes(&self, q: &[u8], s: &[u8], cfg: &ParallelCfg) -> Alignment;
}

impl<K: AlignKind, G: GapModel, S: SubstScore> ParallelExt for Scheme<K, G, S> {
    fn score_parallel_codes(&self, q: &[u8], s: &[u8], cfg: &ParallelCfg) -> Score {
        tiled_score_pass::<K, G, S>(self.gap(), self.subst(), q, s, self.gap().open(), cfg).score
    }

    fn align_parallel_codes(&self, q: &[u8], s: &[u8], cfg: &ParallelCfg) -> Alignment {
        let pass = TiledPass { cfg: *cfg };
        align_with_pass::<K, G, S, _>(
            &pass,
            self.gap(),
            self.subst(),
            q,
            s,
            &AlignConfig::default(),
        )
    }
}

/// Scores many independent pairs with inter-alignment parallelism — the
/// paper's short-read use case (ii): each worker pulls whole alignments
/// from a shared counter (the multi-alignment scheduling of Fig. 3 at
/// alignment granularity).
pub fn score_batch_parallel<K, G, S>(
    scheme: &Scheme<K, G, S>,
    pairs: &[(Seq, Seq)],
    threads: usize,
) -> Vec<Score>
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = threads.max(1).min(pairs.len().max(1));
    let mut scores = vec![0 as Score; pairs.len()];
    let next = AtomicUsize::new(0);
    const CHUNK: usize = 64;
    // Hand out disjoint chunks of the output buffer through a raw
    // pointer wrapper; each index is written exactly once.
    struct Out(*mut Score);
    unsafe impl Send for Out {}
    unsafe impl Sync for Out {}
    let out = Out(scores.as_mut_ptr());
    {
        let out = &out;
        let next = &next;
        std::thread::scope(|sc| {
            for _ in 0..threads {
                sc.spawn(move || loop {
                    let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= pairs.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(pairs.len());
                    for (idx, (q, s)) in pairs.iter().enumerate().take(end).skip(start) {
                        let score = scheme.score(q, s);
                        // SAFETY: idx ranges are disjoint across workers.
                        unsafe { *out.0.add(idx) = score };
                    }
                });
            }
        });
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::{Global, Local};
    use anyseq_core::prelude::{affine, global, linear, local, simple};
    use anyseq_seq::genome::GenomeSim;
    use anyseq_seq::readsim::{ReadSim, ReadSimProfile};

    fn small_cfg() -> ParallelCfg {
        ParallelCfg {
            threads: 6,
            tile: 96,
            min_parallel_area: 0,
            static_schedule: false,
            shard_cells: 0,
        }
    }

    #[test]
    fn parallel_align_equals_scalar_align() {
        let mut sim = GenomeSim::new(11);
        let q = sim.generate(2500);
        let s = sim.mutate(&q, 0.06);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let scalar = scheme.align(&q, &s);
        let par = scheme.align_parallel(&q, &s, &small_cfg());
        assert_eq!(par.score, scalar.score);
        par.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
        // Scores must equal; op sequences may differ between equally
        // optimal paths only if tie-breaking differed — ours is shared,
        // so they should be identical.
        assert_eq!(par.ops, scalar.ops);
    }

    #[test]
    fn parallel_local_align_valid() {
        let mut sim = GenomeSim::new(13);
        let q = sim.generate(1800);
        let s = sim.mutate(&q, 0.15);
        let scheme = local(linear(simple(2, -2), -2));
        let scalar = scheme.align(&q, &s);
        let par = scheme.align_parallel(&q, &s, &small_cfg());
        assert_eq!(par.score, scalar.score);
        par.validate::<Local, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
    }

    #[test]
    fn batch_scores_match_sequential() {
        let mut sim = GenomeSim::new(5);
        let reference = sim.generate(50_000);
        let mut rs = ReadSim::new(ReadSimProfile::default(), 17);
        let pairs: Vec<(Seq, Seq)> = rs
            .simulate_pairs(&reference, 200)
            .into_iter()
            .map(|p| (p.a, p.b))
            .collect();
        let scheme = global(linear(simple(2, -1), -1));
        let batch = score_batch_parallel(&scheme, &pairs, 8);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], scheme.score(q, s), "pair {k}");
        }
    }

    #[test]
    fn batch_empty_and_single() {
        let scheme = global(linear(simple(2, -1), -1));
        assert!(score_batch_parallel(&scheme, &[], 4).is_empty());
        let q = Seq::from_ascii(b"ACGT").unwrap();
        let out = score_batch_parallel(&scheme, &[(q.clone(), q)], 4);
        assert_eq!(out, vec![8]);
    }
}
