//! Boundary-stripe storage for tiled wavefront execution (paper Fig. 2:
//! "the values of the rightmost and bottommost border cells of a submatrix
//! need to be kept as long as neighboring submatrices ... have not been
//! computed yet").
//!
//! One slot per tile column holds the horizontal stripe most recently
//! produced in that column (bottom border of the last finished tile);
//! one slot per tile row holds the vertical stripe. The dependency order
//! of the wavefront guarantees a slot has exactly one producer and one
//! consumer alive at any time, so the per-slot mutexes are uncontended —
//! they exist to keep the code `unsafe`-free, costing two lock/unlock
//! pairs per tile (negligible against the `O(tile²)` relaxation work).

use crate::grid::TileGrid;
use crate::shard::ShardSeam;
use anyseq_core::kind::AlignKind;
use anyseq_core::score::{Score, NEG_INF};
use anyseq_core::scoring::GapModel;
use parking_lot::Mutex;

/// Horizontal stripe: `H(row, j0−1..=j1)` plus `E(row, j0..=j1)`.
#[derive(Debug, Default, Clone)]
pub struct HStripe {
    /// `H` values (width + 1, including the left corner).
    pub h: Vec<Score>,
    /// `E` values (width; empty for linear gap models).
    pub e: Vec<Score>,
}

/// Vertical stripe: `H(i0..=i1, col)` plus `F(i0..=i1, col)`.
#[derive(Debug, Default, Clone)]
pub struct VStripe {
    /// `H` values (height).
    pub h: Vec<Score>,
    /// `F` values (height; empty for linear gap models).
    pub f: Vec<Score>,
}

/// All live boundary stripes of one in-flight tiled pass.
pub struct BorderStore {
    /// Per tile column: the stripe crossing its top edge frontier.
    pub col: Vec<Mutex<HStripe>>,
    /// Per tile row: the stripe crossing its left edge frontier.
    pub row: Vec<Mutex<VStripe>>,
}

impl BorderStore {
    /// Builds the store with the kind's initialization stripes
    /// (row 0 split across column slots, column 0 across row slots).
    /// `tb` is the Hirschberg top-boundary vertical open (see
    /// [`anyseq_core::pass::init_left_h`]).
    pub fn init<K: AlignKind, G: GapModel>(grid: &TileGrid, gap: &G, tb: Score) -> BorderStore {
        Self::init_slab::<K, G>(grid, gap, tb, 0, None)
    }

    /// Builds the store for a *subject slab*: a grid covering absolute
    /// subject columns `col_offset+1 ..= col_offset+grid.m` of a wider
    /// pair. Row 0 stripes use the kind's init values at the slab's
    /// absolute columns; column 0 stripes come from `seam` — the
    /// frontier exported by the slab to the left — or from the kind's
    /// standard column-0 init when `seam` is `None`. With
    /// `col_offset = 0` and no seam this is exactly [`BorderStore::init`].
    pub fn init_slab<K: AlignKind, G: GapModel>(
        grid: &TileGrid,
        gap: &G,
        tb: Score,
        col_offset: usize,
        seam: Option<&ShardSeam>,
    ) -> BorderStore {
        let col = (0..grid.mt)
            .map(|tj| {
                let (j0, w) = grid.cols(tj as u32);
                let a0 = col_offset + j0; // absolute first column of the tile
                Mutex::new(HStripe {
                    h: (a0 - 1..a0 + w).map(|j| K::h_init(gap, j)).collect(),
                    e: if G::AFFINE {
                        (a0..a0 + w)
                            .map(|j| K::h_init(gap, j) + gap.open())
                            .collect()
                    } else {
                        Vec::new()
                    },
                })
            })
            .collect();
        let row = (0..grid.nt)
            .map(|ti| {
                let (i0, h) = grid.rows(ti as u32);
                Mutex::new(match seam {
                    Some(seam) => VStripe {
                        h: seam.h[i0 - 1..i0 - 1 + h].to_vec(),
                        f: if seam.f.is_empty() {
                            Vec::new()
                        } else {
                            seam.f[i0 - 1..i0 - 1 + h].to_vec()
                        },
                    },
                    None => VStripe {
                        h: (i0..i0 + h)
                            .map(|i| {
                                if K::FREE_BEGIN {
                                    0
                                } else {
                                    tb + (i as Score) * gap.extend()
                                }
                            })
                            .collect(),
                        f: if G::AFFINE {
                            vec![NEG_INF; h]
                        } else {
                            Vec::new()
                        },
                    },
                })
            })
            .collect();
        BorderStore { col, row }
    }

    /// Exports the frontier at absolute subject column `col` — after a
    /// slab pass each row slot holds the right stripe of its row's last
    /// tile, i.e. `H`/`F` of the slab's final column. Concatenating the
    /// slots top to bottom rebuilds the full-height [`ShardSeam`] the
    /// next slab (or the next process) seeds from.
    pub fn export_seam(&self, grid: &TileGrid, col: usize) -> ShardSeam {
        let mut h = Vec::with_capacity(grid.n);
        let mut f = Vec::new();
        for slot in &self.row {
            let stripe = slot.lock();
            h.extend_from_slice(&stripe.h);
            f.extend_from_slice(&stripe.f);
        }
        ShardSeam { col, h, f }
    }

    /// Resident stripe bytes right now (score payloads only; the slot
    /// vectors and mutexes are O(tiles) and excluded). Observability
    /// reads this to account the wavefront's O(n + m) working set —
    /// the structural reason the tiled pass beats an O(n·m) matrix.
    pub fn bytes(&self) -> usize {
        let score = std::mem::size_of::<Score>();
        let col: usize = self
            .col
            .iter()
            .map(|s| {
                let g = s.lock();
                (g.h.len() + g.e.len()) * score
            })
            .sum();
        let row: usize = self
            .row
            .iter()
            .map(|s| {
                let g = s.lock();
                (g.h.len() + g.f.len()) * score
            })
            .sum();
        col + row
    }

    /// Stripe bytes a store for `grid` retains, without building one:
    /// `H` needs `m + mt` (column slots, one corner each) plus `n`
    /// (row slots); affine gap models add `E` (`m`) and `F` (`n`).
    /// Matches [`BorderStore::bytes`] immediately after `init`.
    pub fn estimated_bytes(grid: &TileGrid, affine: bool) -> usize {
        let h = grid.m + grid.mt + grid.n;
        let ef = if affine { grid.m + grid.n } else { 0 };
        (h + ef) * std::mem::size_of::<Score>()
    }

    /// Assembles the final DP row `H(n, 0..=m)` and `E(n, 1..=m)` from the
    /// column slots (after the pass, each slot holds the bottom stripe of
    /// its column's last tile).
    pub fn assemble_last_rows(&self, grid: &TileGrid) -> (Vec<Score>, Vec<Score>) {
        let mut last_h = Vec::with_capacity(grid.m + 1);
        let mut last_e = Vec::with_capacity(grid.m);
        for (tj, slot) in self.col.iter().enumerate() {
            let stripe = slot.lock();
            if tj == 0 {
                last_h.extend_from_slice(&stripe.h);
            } else {
                last_h.extend_from_slice(&stripe.h[1..]);
            }
            last_e.extend_from_slice(&stripe.e);
        }
        (last_h, last_e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::Global;
    use anyseq_core::scoring::AffineGap;

    #[test]
    fn init_splits_strides_consistently() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let grid = TileGrid::new(10, 10, 4); // tiles: 4,4,2
        let store = BorderStore::init::<Global, _>(&grid, &gap, gap.open());
        assert_eq!(store.col.len(), 3);
        assert_eq!(store.row.len(), 3);
        // First column slot: H(0, 0..=4) = 0,-3,-4,-5,-6
        assert_eq!(store.col[0].lock().h, vec![0, -3, -4, -5, -6]);
        // Second: H(0, 4..=8), overlapping the corner at j=4.
        assert_eq!(store.col[1].lock().h, vec![-6, -7, -8, -9, -10]);
        // Last (width 2): H(0, 8..=10)
        assert_eq!(store.col[2].lock().h, vec![-10, -11, -12]);
        // Row slots mirror for column 0.
        assert_eq!(store.row[0].lock().h, vec![-3, -4, -5, -6]);
        assert_eq!(store.row[2].lock().h, vec![-11, -12]);
        // Assembling immediately returns the init row.
        let (h, e) = store.assemble_last_rows(&grid);
        assert_eq!(h.len(), 11);
        assert_eq!(e.len(), 10);
        assert_eq!(h[0], 0);
        assert_eq!(h[10], -12);
    }

    #[test]
    fn byte_accounting_matches_estimate() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let grid = TileGrid::new(10, 10, 4);
        let store = BorderStore::init::<Global, _>(&grid, &gap, gap.open());
        assert_eq!(
            store.bytes(),
            BorderStore::estimated_bytes(&grid, true),
            "fresh affine store"
        );
        // Linear stores carry no E/F stripes.
        use anyseq_core::scoring::LinearGap;
        let lin = LinearGap { gap: -1 };
        let store = BorderStore::init::<Global, _>(&grid, &lin, lin.gap);
        assert_eq!(store.bytes(), BorderStore::estimated_bytes(&grid, false));
        assert!(BorderStore::estimated_bytes(&grid, true) > store.bytes());
    }
}
