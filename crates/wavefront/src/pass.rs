//! Multithreaded tiled score passes — the paper's CPU parallelization
//! (§IV-A) of the linear-space score computation, built from the core
//! tile kernel plus the dynamic wavefront scheduler.

use crate::borders::BorderStore;
use crate::grid::{TileGrid, TileId};
use crate::scheduler::{run_dynamic, run_static};
use anyseq_core::kind::{AlignKind, OptRegion};
use anyseq_core::pass::{score_pass, PassOutput};
use anyseq_core::relax::BestCell;
use anyseq_core::score::Score;
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};

/// Parallel execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCfg {
    /// Worker threads.
    pub threads: usize,
    /// Square tile edge length.
    pub tile: usize,
    /// Matrices smaller than this many cells run single-threaded (the
    /// scheduling overhead would dominate).
    pub min_parallel_area: usize,
    /// Use the static barrier-per-diagonal schedule instead of the
    /// dynamic queue (Fig. 6 comparison; dynamic is the default).
    pub static_schedule: bool,
    /// Shard budget in DP cells: pairs larger than this run as a serial
    /// chain of subject slabs with seam hand-off
    /// ([`crate::sharded_score_pass`]), bounding peak resident border +
    /// grid memory to one slab. 0 (the default) disables sharding.
    pub shard_cells: u64,
}

impl ParallelCfg {
    /// Dynamic wavefront with the given thread count and 512-wide tiles.
    pub fn threads(threads: usize) -> ParallelCfg {
        ParallelCfg {
            threads: threads.max(1),
            tile: 512,
            min_parallel_area: 1 << 22,
            static_schedule: false,
            shard_cells: 0,
        }
    }

    /// Uses all available cores.
    pub fn auto() -> ParallelCfg {
        ParallelCfg::threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Overrides the tile size.
    pub fn with_tile(mut self, tile: usize) -> ParallelCfg {
        assert!(tile > 0);
        self.tile = tile;
        self
    }

    /// Switches to the static barrier schedule.
    pub fn with_static_schedule(mut self, yes: bool) -> ParallelCfg {
        self.static_schedule = yes;
        self
    }

    /// Sets the shard budget (0 disables sharding).
    pub fn with_shard_cells(mut self, cells: u64) -> ParallelCfg {
        self.shard_cells = cells;
        self
    }
}

/// Per-worker scratch: reusable tile output plus the worker's running
/// optimum.
struct Scratch {
    out: TileOut,
    top: crate::borders::HStripe,
    left: crate::borders::VStripe,
    best: BestCell,
}

/// Parallel tiled score-only pass of kind `K` (same contract as
/// [`anyseq_core::pass::score_pass`], including the Hirschberg `tb`
/// boundary adjustment).
pub fn tiled_score_pass<K, G, S>(
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    tb: Score,
    cfg: &ParallelCfg,
) -> PassOutput
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();
    // Shard oversized pairs regardless of thread count — the memory
    // bound matters even single-threaded. Because every Hirschberg
    // half-pass routes through here, alignment shards automatically.
    if cfg.shard_cells > 0 && n > 0 && m > 1 && (n as u64) * (m as u64) > cfg.shard_cells {
        return crate::shard::sharded_score_pass::<K, G, S>(gap, subst, q, s, tb, cfg);
    }
    if n == 0 || m == 0 || n * m < cfg.min_parallel_area || cfg.threads == 1 {
        return score_pass::<K, G, S>(gap, subst, q, s, tb);
    }

    let grid = TileGrid::new(n, m, cfg.tile);
    let borders = BorderStore::init::<K, G>(&grid, gap, tb);

    let compute = |scratch: &mut Scratch, tiles: &[TileId]| {
        for &t in tiles {
            let (i0, th) = grid.rows(t.ti);
            let (j0, tw) = grid.cols(t.tj);
            // Take the input stripes (swap avoids reallocation; the slots
            // are refilled with our outputs below).
            {
                let mut slot = borders.col[t.tj as usize].lock();
                std::mem::swap(&mut scratch.top.h, &mut slot.h);
                std::mem::swap(&mut scratch.top.e, &mut slot.e);
            }
            {
                let mut slot = borders.row[t.ti as usize].lock();
                std::mem::swap(&mut scratch.left.h, &mut slot.h);
                std::mem::swap(&mut scratch.left.f, &mut slot.f);
            }
            relax_tile::<K, G, S, _>(
                gap,
                subst,
                &q[i0 - 1..i0 - 1 + th],
                &s[j0 - 1..j0 - 1 + tw],
                (i0, j0),
                (n, m),
                TileIn {
                    top_h: &scratch.top.h,
                    top_e: &scratch.top.e,
                    left_h: &scratch.left.h,
                    left_f: &scratch.left.f,
                },
                &mut scratch.out,
                &mut NoSink,
            );
            scratch.best.merge(&scratch.out.best);
            {
                let mut slot = borders.col[t.tj as usize].lock();
                std::mem::swap(&mut slot.h, &mut scratch.out.bot_h);
                std::mem::swap(&mut slot.e, &mut scratch.out.bot_e);
            }
            {
                let mut slot = borders.row[t.ti as usize].lock();
                std::mem::swap(&mut slot.h, &mut scratch.out.right_h);
                std::mem::swap(&mut slot.f, &mut scratch.out.right_f);
            }
        }
    };
    let make_scratch = || Scratch {
        out: TileOut::new(),
        top: Default::default(),
        left: Default::default(),
        best: BestCell::empty(),
    };

    let scratches = if cfg.static_schedule {
        run_static(&grid, cfg.threads, make_scratch, compute)
    } else {
        run_dynamic(&grid, cfg.threads, 1, make_scratch, compute)
    };

    let (last_h, last_e) = borders.assemble_last_rows(&grid);
    let mut best = BestCell::empty();
    for scr in &scratches {
        best.merge(&scr.best);
    }
    finalize::<K, G>(gap, best, n, m, tb, &last_h, last_e)
}

/// Applies the kind's optimum conventions to a tracked best cell and the
/// final row — shared by every tiled backend so results are bit-identical
/// with `anyseq_core::pass::score_pass`.
pub fn finalize<K: AlignKind, G: GapModel>(
    gap: &G,
    best: BestCell,
    n: usize,
    m: usize,
    tb: Score,
    last_h: &[Score],
    last_e: Vec<Score>,
) -> PassOutput {
    let (score, end) = finalize_score::<K, G>(gap, best, n, m, tb, last_h[m]);
    PassOutput {
        score,
        end,
        last_h: last_h.to_vec(),
        last_e,
    }
}

/// Score-only tail of [`finalize`]: applies the kind's optimum
/// conventions given just the tracked best cell and the final corner
/// value `h_nm = H(n, m)` — all a sharded score chain retains after
/// dropping the last rows.
pub fn finalize_score<K: AlignKind, G: GapModel>(
    gap: &G,
    mut best: BestCell,
    n: usize,
    m: usize,
    tb: Score,
    h_nm: Score,
) -> (Score, (usize, usize)) {
    match K::OPT {
        OptRegion::Corner => (h_nm, (n, m)),
        OptRegion::Border | OptRegion::Anywhere => {
            if matches!(K::OPT, OptRegion::Anywhere) && !K::NU_ZERO {
                best.update(0, 0, 0);
            }
            if matches!(K::OPT, OptRegion::Border) {
                let h_0m = K::h_init(gap, m);
                let h_n0 = if K::FREE_BEGIN {
                    0
                } else {
                    tb + (n as Score) * gap.extend()
                };
                best.update(h_0m, 0, m);
                best.update(h_n0, n, 0);
            }
            if K::NU_ZERO && best.score <= 0 {
                (0, (0, 0))
            } else {
                (best.score, (best.i, best.j))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::{Global, Local, SemiGlobal};
    use anyseq_core::scoring::{simple, AffineGap, LinearGap};
    use anyseq_seq::genome::GenomeSim;

    fn test_cfg(threads: usize, tile: usize) -> ParallelCfg {
        ParallelCfg {
            threads,
            tile,
            min_parallel_area: 0,
            static_schedule: false,
            shard_cells: 0,
        }
    }

    #[test]
    fn matches_scalar_pass_linear_global() {
        let mut sim = GenomeSim::new(1);
        let q = sim.generate(3000);
        let s = sim.mutate(&q, 0.05);
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        for (threads, tile) in [(1, 128), (4, 128), (8, 64), (23, 256)] {
            let par = tiled_score_pass::<Global, _, _>(
                &gap,
                &subst,
                q.codes(),
                s.codes(),
                gap.open(),
                &test_cfg(threads, tile),
            );
            assert_eq!(par.score, scalar.score, "threads={threads} tile={tile}");
            assert_eq!(par.last_h, scalar.last_h);
        }
    }

    #[test]
    fn matches_scalar_pass_affine_all_kinds() {
        let mut sim = GenomeSim::new(7);
        let q = sim.generate(1500);
        let s = sim.mutate(&q, 0.10);
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let cfg = test_cfg(6, 100);
        macro_rules! check {
            ($kind:ty) => {{
                let scalar =
                    score_pass::<$kind, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
                let par = tiled_score_pass::<$kind, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &cfg,
                );
                assert_eq!(
                    par.score,
                    scalar.score,
                    "{} score",
                    <$kind as AlignKind>::NAME
                );
                assert_eq!(par.end, scalar.end, "{} end", <$kind as AlignKind>::NAME);
                assert_eq!(par.last_h, scalar.last_h);
                assert_eq!(par.last_e, scalar.last_e);
            }};
        }
        check!(Global);
        check!(Local);
        check!(SemiGlobal);
    }

    #[test]
    fn static_schedule_same_result() {
        let mut sim = GenomeSim::new(3);
        let q = sim.generate(2000);
        let s = sim.mutate(&q, 0.08);
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        let mut cfg = test_cfg(5, 128);
        cfg.static_schedule = true;
        let par =
            tiled_score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open(), &cfg);
        assert_eq!(par.score, scalar.score);
    }

    #[test]
    fn small_inputs_fall_back_to_scalar() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let q = [0u8, 1, 2, 3];
        let cfg = ParallelCfg::threads(8); // min_parallel_area big
        let out = tiled_score_pass::<Global, _, _>(&gap, &subst, &q, &q, gap.open(), &cfg);
        assert_eq!(out.score, 8);
    }

    #[test]
    fn hirschberg_tb_respected_in_parallel() {
        // tb != open must flow into the left column init.
        let mut sim = GenomeSim::new(9);
        let q = sim.generate(900);
        let s = sim.generate(700);
        let gap = AffineGap {
            open: -5,
            extend: -1,
        };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), 0);
        let par = tiled_score_pass::<Global, _, _>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            0,
            &test_cfg(4, 64),
        );
        assert_eq!(par.score, scalar.score);
        assert_eq!(par.last_h, scalar.last_h);
        assert_eq!(par.last_e, scalar.last_e);
    }
}
