//! # anyseq-wavefront — tiled wavefront execution substrate
//!
//! Multithreaded CPU parallelization of the anyseq alignment core,
//! reproducing the paper's §IV-A: DP submatrices (tiles) are relaxed in
//! wavefront order, scheduled **dynamically** through a thread-safe
//! lock-free queue with per-tile atomic dependency counters. The
//! preliminary static barrier-per-diagonal schedule is retained for the
//! Fig. 6 scalability comparison.
//!
//! Only `O(n + m)` boundary stripes are ever materialized (paper Fig. 2);
//! tile interiors live in per-worker rolling rows.
//!
//! ```
//! use anyseq_core::prelude::*;
//! use anyseq_wavefront::{ParallelCfg, ParallelExt};
//! use anyseq_seq::genome::GenomeSim;
//!
//! let mut sim = GenomeSim::new(42);
//! let q = sim.generate(10_000);
//! let s = sim.mutate(&q, 0.05);
//! let scheme = global(affine(simple(2, -1), -2, -1));
//! let cfg = ParallelCfg::threads(4).with_tile(512);
//! let score = scheme.score_parallel(&q, &s, &cfg);
//! assert_eq!(score, scheme.score(&q, &s));
//! ```

pub mod aligner;
pub mod borders;
pub mod grid;
pub mod pass;
pub mod scheduler;
pub mod shard;

pub use aligner::{score_batch_parallel, ParallelExt, TiledPass};
pub use grid::{TileGrid, TileId};
pub use pass::{finalize_score, tiled_score_pass, ParallelCfg};
pub use scheduler::{run_dynamic, run_static};
pub use shard::{plan_columns, sharded_score_pass, slab_score_pass, ShardSeam, SlabOutput};
