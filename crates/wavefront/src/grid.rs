//! Tile-grid geometry over an `n × m` DP matrix.

/// Identifier of one tile (row-major tile coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileId {
    /// Tile row.
    pub ti: u32,
    /// Tile column.
    pub tj: u32,
}

/// Geometry of a tiling: `nt × mt` tiles of size `tile_h × tile_w`
/// (edge tiles are smaller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// DP rows (query length).
    pub n: usize,
    /// DP columns (subject length).
    pub m: usize,
    /// Tile height.
    pub tile_h: usize,
    /// Tile width.
    pub tile_w: usize,
    /// Number of tile rows.
    pub nt: usize,
    /// Number of tile columns.
    pub mt: usize,
}

impl TileGrid {
    /// Creates a grid with square-ish tiles of the given size.
    pub fn new(n: usize, m: usize, tile: usize) -> TileGrid {
        assert!(n > 0 && m > 0, "grid requires non-empty matrix");
        assert!(tile > 0, "tile size must be positive");
        TileGrid {
            n,
            m,
            tile_h: tile,
            tile_w: tile,
            nt: n.div_ceil(tile),
            mt: m.div_ceil(tile),
        }
    }

    /// Total number of tiles.
    #[inline]
    pub fn total(&self) -> usize {
        self.nt * self.mt
    }

    /// 1-based first row and height of tile row `ti`.
    #[inline]
    pub fn rows(&self, ti: u32) -> (usize, usize) {
        let i0 = (ti as usize) * self.tile_h + 1;
        let h = self.tile_h.min(self.n + 1 - i0);
        (i0, h)
    }

    /// 1-based first column and width of tile column `tj`.
    #[inline]
    pub fn cols(&self, tj: u32) -> (usize, usize) {
        let j0 = (tj as usize) * self.tile_w + 1;
        let w = self.tile_w.min(self.m + 1 - j0);
        (j0, w)
    }

    /// Flat index of a tile.
    #[inline]
    pub fn index(&self, t: TileId) -> usize {
        t.ti as usize * self.mt + t.tj as usize
    }

    /// Number of unmet dependencies of a tile at the start (its top and
    /// left neighbours; the diagonal is transitively implied).
    #[inline]
    pub fn initial_deps(&self, t: TileId) -> u8 {
        (t.ti > 0) as u8 + (t.tj > 0) as u8
    }

    /// Tiles on anti-diagonal `d` (`d = ti + tj`), in increasing `ti`.
    pub fn diagonal(&self, d: usize) -> impl Iterator<Item = TileId> + '_ {
        let ti_min = d.saturating_sub(self.mt - 1);
        let ti_max = d.min(self.nt - 1);
        (ti_min..=ti_max).map(move |ti| TileId {
            ti: ti as u32,
            tj: (d - ti) as u32,
        })
    }

    /// Number of anti-diagonals.
    #[inline]
    pub fn diagonals(&self) -> usize {
        self.nt + self.mt - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_covers_matrix_exactly() {
        for (n, m, t) in [(100, 100, 32), (1, 1, 8), (33, 65, 32), (512, 7, 64)] {
            let g = TileGrid::new(n, m, t);
            let mut rows = 0;
            for ti in 0..g.nt {
                let (i0, h) = g.rows(ti as u32);
                assert_eq!(i0, rows + 1);
                rows += h;
                assert!(h >= 1 && h <= t);
            }
            assert_eq!(rows, n);
            let mut cols = 0;
            for tj in 0..g.mt {
                let (j0, w) = g.cols(tj as u32);
                assert_eq!(j0, cols + 1);
                cols += w;
            }
            assert_eq!(cols, m);
        }
    }

    #[test]
    fn diagonals_enumerate_every_tile_once() {
        let g = TileGrid::new(100, 70, 16);
        let mut seen = std::collections::HashSet::new();
        for d in 0..g.diagonals() {
            for t in g.diagonal(d) {
                assert_eq!(t.ti as usize + t.tj as usize, d);
                assert!(seen.insert(g.index(t)));
            }
        }
        assert_eq!(seen.len(), g.total());
    }

    #[test]
    fn deps_are_zero_only_for_origin() {
        let g = TileGrid::new(64, 64, 16);
        assert_eq!(g.initial_deps(TileId { ti: 0, tj: 0 }), 0);
        assert_eq!(g.initial_deps(TileId { ti: 0, tj: 3 }), 1);
        assert_eq!(g.initial_deps(TileId { ti: 2, tj: 0 }), 1);
        assert_eq!(g.initial_deps(TileId { ti: 2, tj: 2 }), 2);
    }
}
