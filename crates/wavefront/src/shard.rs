//! Cross-shard border stitching — the paper's Fig. 2 border stripes
//! promoted from an intra-pass detail to a first-class contract between
//! *subject shards* of one alignment pair.
//!
//! A shard is a contiguous slab of subject columns. The only state one
//! slab needs from its left neighbour is the DP frontier at the cut
//! column — `H(1..=n, col)` plus `F(1..=n, col)` for affine models (`E`
//! propagates *down* rows, never *right* across a column cut, so it
//! never crosses a vertical seam). That frontier is a [`ShardSeam`]:
//! small (`O(n)`), serializable, and sufficient to restart the pass on
//! the other side of the cut — which bounds the resident border +
//! grid working set of a chromosome-scale pair to one slab, and is the
//! hand-off a multi-process deployment would ship over the wire.

use crate::borders::BorderStore;
use crate::grid::{TileGrid, TileId};
use crate::pass::{finalize, ParallelCfg};
use crate::scheduler::run_dynamic;
use anyseq_core::kind::AlignKind;
use anyseq_core::pass::PassOutput;
use anyseq_core::relax::BestCell;
use anyseq_core::score::Score;
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};

/// The complete DP frontier at one absolute subject column: everything
/// a pass over the columns to its right needs from the columns to its
/// left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSeam {
    /// Absolute subject column the frontier sits on (1-based; column
    /// `col` is the last column the producing shard relaxed).
    pub col: usize,
    /// `H(1..=n, col)` — one value per query row.
    pub h: Vec<Score>,
    /// `F(1..=n, col)` — one value per query row; empty for linear gap
    /// models (the linear kernel derives vertical moves from `H`).
    pub f: Vec<Score>,
}

impl ShardSeam {
    /// Resident payload bytes of the frontier.
    pub fn bytes(&self) -> usize {
        (self.h.len() + self.f.len()) * std::mem::size_of::<Score>()
    }

    /// Serializes the seam (little-endian `col`/`h.len`/`f.len` header
    /// followed by the raw score payloads) — the wire format a
    /// multi-process shard chain would exchange.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.bytes());
        out.extend_from_slice(&(self.col as u64).to_le_bytes());
        out.extend_from_slice(&(self.h.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.f.len() as u64).to_le_bytes());
        for v in &self.h {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.f {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a seam produced by [`ShardSeam::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardSeam, String> {
        let word = |at: usize| -> Result<u64, String> {
            bytes
                .get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| "seam header truncated".to_string())
        };
        let col = word(0)? as usize;
        let hn = word(8)? as usize;
        let fn_ = word(16)? as usize;
        let need = 24 + (hn + fn_) * std::mem::size_of::<Score>();
        if bytes.len() != need {
            return Err(format!(
                "seam payload length mismatch: have {}, need {need}",
                bytes.len()
            ));
        }
        let score_at = |at: usize| Score::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let h = (0..hn).map(|k| score_at(24 + 4 * k)).collect();
        let f = (0..fn_).map(|k| score_at(24 + 4 * (hn + k))).collect();
        Ok(ShardSeam { col, h, f })
    }
}

/// Cuts an `n × m` DP matrix into contiguous subject-column slabs of at
/// most `shard_cells` cells each (at least one column per slab). Returns
/// half-open `(c0, c1]`-style column ranges `(c0, c1)` with `c0` the
/// number of columns already consumed — slab `k` relaxes absolute
/// columns `c0+1..=c1`.
pub fn plan_columns(n: usize, m: usize, shard_cells: u64) -> Vec<(usize, usize)> {
    if n == 0 || m == 0 {
        return vec![(0, m)];
    }
    let width = ((shard_cells / n as u64).max(1) as usize).min(m);
    let mut plan = Vec::with_capacity(m.div_ceil(width));
    let mut c0 = 0;
    while c0 < m {
        let c1 = (c0 + width).min(m);
        plan.push((c0, c1));
        c0 = c1;
    }
    plan
}

/// Result of one slab pass: the outgoing frontier plus the slab's share
/// of the final DP row and the slab-local optimum.
#[derive(Debug, Clone)]
pub struct SlabOutput {
    /// Frontier at the slab's last column — input for the next slab.
    pub seam: ShardSeam,
    /// `H(n, c0..=c1)` — width + 1 values including the left corner
    /// (concatenate, dropping the corner on every slab but the first,
    /// to rebuild the full last row).
    pub last_h: Vec<Score>,
    /// `E(n, c0+1..=c1)` — width values; empty for linear models.
    pub last_e: Vec<Score>,
    /// Best cell seen inside the slab (absolute coordinates).
    pub best: BestCell,
}

/// Per-worker scratch for the slab pass (mirror of the one in
/// `pass.rs`; kept private to each pass).
struct Scratch {
    out: TileOut,
    top: crate::borders::HStripe,
    left: crate::borders::VStripe,
    best: BestCell,
}

/// Tiled score-only pass over one subject slab `cols = (c0, c1)` of the
/// full pair `(q, s)`, seeded from `seam` (the frontier at column `c0`)
/// or from the kind's standard initialization when `seam` is `None`
/// (first slab). Only the slab's own `O(n + width)` border stripes are
/// resident. Bit-identical to the same columns of an unsharded pass.
#[allow(clippy::too_many_arguments)]
pub fn slab_score_pass<K, G, S>(
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cols: (usize, usize),
    tb: Score,
    seam: Option<&ShardSeam>,
    cfg: &ParallelCfg,
) -> SlabOutput
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();
    let (c0, c1) = cols;
    assert!(n > 0 && c0 < c1 && c1 <= m, "degenerate slab {cols:?}");
    if let Some(seam) = seam {
        assert_eq!(seam.col, c0, "seam column does not meet the slab");
        assert_eq!(seam.h.len(), n, "seam height does not match the query");
    }

    let grid = TileGrid::new(n, c1 - c0, cfg.tile);
    let borders = BorderStore::init_slab::<K, G>(&grid, gap, tb, c0, seam);

    let compute = |scratch: &mut Scratch, tiles: &[TileId]| {
        for &t in tiles {
            let (i0, th) = grid.rows(t.ti);
            let (j0, tw) = grid.cols(t.tj);
            {
                let mut slot = borders.col[t.tj as usize].lock();
                std::mem::swap(&mut scratch.top.h, &mut slot.h);
                std::mem::swap(&mut scratch.top.e, &mut slot.e);
            }
            {
                let mut slot = borders.row[t.ti as usize].lock();
                std::mem::swap(&mut scratch.left.h, &mut slot.h);
                std::mem::swap(&mut scratch.left.f, &mut slot.f);
            }
            // Absolute subject columns: the slab-local column `j` is
            // `c0 + j` in the pair, and the kind's border-optimum
            // detection needs the pair's true dimensions.
            relax_tile::<K, G, S, _>(
                gap,
                subst,
                &q[i0 - 1..i0 - 1 + th],
                &s[c0 + j0 - 1..c0 + j0 - 1 + tw],
                (i0, c0 + j0),
                (n, m),
                TileIn {
                    top_h: &scratch.top.h,
                    top_e: &scratch.top.e,
                    left_h: &scratch.left.h,
                    left_f: &scratch.left.f,
                },
                &mut scratch.out,
                &mut NoSink,
            );
            scratch.best.merge(&scratch.out.best);
            {
                let mut slot = borders.col[t.tj as usize].lock();
                std::mem::swap(&mut slot.h, &mut scratch.out.bot_h);
                std::mem::swap(&mut slot.e, &mut scratch.out.bot_e);
            }
            {
                let mut slot = borders.row[t.ti as usize].lock();
                std::mem::swap(&mut slot.h, &mut scratch.out.right_h);
                std::mem::swap(&mut slot.f, &mut scratch.out.right_f);
            }
        }
    };
    let make_scratch = || Scratch {
        out: TileOut::new(),
        top: Default::default(),
        left: Default::default(),
        best: BestCell::empty(),
    };

    let scratches = run_dynamic(&grid, cfg.threads.max(1), 1, make_scratch, compute);

    let (last_h, last_e) = borders.assemble_last_rows(&grid);
    let seam = borders.export_seam(&grid, c1);
    let mut best = BestCell::empty();
    for scr in &scratches {
        best.merge(&scr.best);
    }
    SlabOutput {
        seam,
        last_h,
        last_e,
        best,
    }
}

/// Full score pass executed as a serial chain of subject slabs with
/// seam hand-off — same contract (and bit-identical output) as
/// [`crate::tiled_score_pass`], but peak resident border + grid memory
/// is bounded by one slab instead of the whole subject.
pub fn sharded_score_pass<K, G, S>(
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    tb: Score,
    cfg: &ParallelCfg,
) -> PassOutput
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();
    let plan = plan_columns(n, m, cfg.shard_cells);
    let mut last_h = Vec::with_capacity(m + 1);
    let mut last_e = Vec::with_capacity(m);
    let mut best = BestCell::empty();
    let mut seam: Option<ShardSeam> = None;
    for (k, &cols) in plan.iter().enumerate() {
        let slab = slab_score_pass::<K, G, S>(gap, subst, q, s, cols, tb, seam.as_ref(), cfg);
        if k == 0 {
            last_h.extend_from_slice(&slab.last_h);
        } else {
            last_h.extend_from_slice(&slab.last_h[1..]);
        }
        last_e.extend_from_slice(&slab.last_e);
        best.merge(&slab.best);
        seam = Some(slab.seam);
    }
    finalize::<K, G>(gap, best, n, m, tb, &last_h, last_e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::{Global, Local, SemiGlobal};
    use anyseq_core::pass::score_pass;
    use anyseq_core::scoring::{simple, AffineGap, LinearGap};
    use anyseq_seq::genome::GenomeSim;

    #[test]
    fn seam_round_trips_stripe_exactly() {
        let seam = ShardSeam {
            col: 1234,
            h: vec![0, -3, 7, Score::MIN / 4, 42],
            f: vec![-9, -8, -7, -6, -5],
        };
        let back = ShardSeam::from_bytes(&seam.to_bytes()).unwrap();
        assert_eq!(back, seam);
        // Linear seams carry no F stripe.
        let lin = ShardSeam {
            col: 1,
            h: vec![5, -5],
            f: Vec::new(),
        };
        assert_eq!(ShardSeam::from_bytes(&lin.to_bytes()).unwrap(), lin);
        assert!(ShardSeam::from_bytes(&lin.to_bytes()[..9]).is_err());
        assert!(ShardSeam::from_bytes(&[0u8; 25]).is_err());
    }

    #[test]
    fn plan_covers_all_columns_without_overlap() {
        for (n, m, cells) in [(100, 1000, 20_000u64), (7, 13, 1), (5, 5, 1_000_000)] {
            let plan = plan_columns(n, m, cells);
            let mut next = 0;
            for &(c0, c1) in &plan {
                assert_eq!(c0, next);
                assert!(c1 > c0);
                next = c1;
            }
            assert_eq!(next, m);
        }
        assert_eq!(plan_columns(100, 1000, 20_000).len(), 5);
        assert_eq!(plan_columns(5, 5, 1_000_000).len(), 1);
    }

    #[test]
    fn sharded_pass_matches_unsharded_all_kinds() {
        let mut sim = GenomeSim::new(11);
        let q = sim.generate(1100);
        let s = sim.mutate(&q, 0.08);
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let mut cfg = ParallelCfg::threads(4).with_tile(96);
        // Force ~6 slabs of the subject.
        cfg.shard_cells = (q.len() as u64) * (s.len() as u64) / 6;
        macro_rules! check {
            ($kind:ty) => {{
                let scalar =
                    score_pass::<$kind, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
                let sharded = sharded_score_pass::<$kind, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &cfg,
                );
                assert_eq!(sharded.score, scalar.score);
                assert_eq!(sharded.end, scalar.end);
                assert_eq!(sharded.last_h, scalar.last_h);
                assert_eq!(sharded.last_e, scalar.last_e);
            }};
        }
        check!(Global);
        check!(Local);
        check!(SemiGlobal);
    }

    #[test]
    fn sharded_pass_matches_linear_and_single_thread() {
        let mut sim = GenomeSim::new(12);
        let q = sim.generate(700);
        let s = sim.generate(900);
        let gap = LinearGap { gap: -2 };
        let subst = simple(1, -1);
        let mut cfg = ParallelCfg::threads(1).with_tile(64);
        cfg.shard_cells = 64 * 700;
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        let sharded = sharded_score_pass::<Global, _, _>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
            &cfg,
        );
        assert_eq!(sharded.score, scalar.score);
        assert_eq!(sharded.last_h, scalar.last_h);
    }

    #[test]
    fn slab_seam_matches_unsharded_interior_column() {
        // The exported frontier must equal the H column of a full pass.
        let mut sim = GenomeSim::new(13);
        let q = sim.generate(300);
        let s = sim.mutate(&q, 0.05);
        let gap = AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -2);
        let cfg = ParallelCfg::threads(2).with_tile(64);
        let cut = 150;
        let slab = slab_score_pass::<Global, _, _>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            (0, cut),
            gap.open(),
            None,
            &cfg,
        );
        assert_eq!(slab.seam.col, cut);
        assert_eq!(slab.seam.h.len(), q.len());
        assert_eq!(slab.seam.f.len(), q.len());
        // A prefix-only full pass ends exactly at the cut: its last row
        // corner H(n, cut) must agree with the seam's last entry.
        let prefix =
            score_pass::<Global, _, _>(&gap, &subst, q.codes(), &s.codes()[..cut], gap.open());
        assert_eq!(slab.seam.h[q.len() - 1], prefix.last_h[cut]);
    }
}
