#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file produced by `anyseq-obs`.

Usage: check_trace.py <trace.json> [--min-coverage FRAC] [--flight]

Fails (exit 1) unless the trace is a well-formed event array:
  * every event carries name/ph/pid/tid, with ph one of B/E/M and a
    numeric `ts` on B and E,
  * per (pid, tid) lane, timestamps are monotone non-decreasing, every
    B is closed by an E with the same name, no E arrives without an
    open B, and spans on one lane never nest or overlap (the
    per-worker recorder emits strictly sequential stage spans),
  * a thread_name metadata event names the coordinator lane (tid 0),
  * with `--min-coverage FRAC`, the union of all spans must cover at
    least that fraction of the wall clock (first B to last E) — holes
    mean a pipeline stage is running untraced.

`--flight` validates a serve-daemon flight-recorder dump instead
(`anyseq serve-ctl --dump` / the `DUMP` verb): two pid groups (engine
batches + request lanes) share the same structural rules, the
coordinator-lane requirement is waived (the batch ring may be empty),
and every request-lifecycle stage name (decode, window_wait,
queue_wait, dispatch, reply_write) must appear as a completed span.

Guards the `--trace-out` / bench trace artifact and the flight dump
(formats documented in docs/ARCHITECTURE.md) against malformed or
incomplete span streams.
"""

import json
import sys

REQUIRED_FIELDS = ("name", "ph", "pid", "tid")


def main() -> int:
    argv = list(sys.argv[1:])
    min_coverage = 0.0
    if "--min-coverage" in argv:
        i = argv.index("--min-coverage")
        try:
            min_coverage = float(argv[i + 1])
        except (IndexError, ValueError):
            print(__doc__, file=sys.stderr)
            return 2
        del argv[i : i + 2]
    flight = "--flight" in argv
    if flight:
        argv.remove("--flight")
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[0]

    with open(path) as fh:
        events = json.load(fh)
    if not isinstance(events, list):
        print(f"{path}: top-level JSON value must be an array", file=sys.stderr)
        return 1

    errors = []
    open_span = {}  # (pid, tid) -> (name, ts) of the currently open B
    last_ts = {}  # (pid, tid) -> ts of the lane's previous B/E event
    intervals = []  # matched (start, end) pairs across all lanes
    names = set()  # thread_name metadata values
    span_names = set()  # names of completed spans
    spans = 0

    for k, ev in enumerate(events):
        where = f"event {k}"
        if not isinstance(ev, dict) or any(f not in ev for f in REQUIRED_FIELDS):
            errors.append(f"{where}: missing one of {'/'.join(REQUIRED_FIELDS)}")
            continue
        ph, tid = ev["ph"], (ev["pid"], ev["tid"])
        if ph == "M":
            if ev["name"] == "thread_name":
                names.add(ev.get("args", {}).get("name"))
            continue
        if ph not in ("B", "E"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: {ph} event without numeric ts")
            continue
        if ts < last_ts.get(tid, float("-inf")):
            errors.append(
                f"{where}: tid {tid} timestamps go backwards "
                f"({ts} after {last_ts[tid]})"
            )
        last_ts[tid] = ts
        if ph == "B":
            if tid in open_span:
                errors.append(
                    f"{where}: tid {tid} opens {ev['name']!r} while "
                    f"{open_span[tid][0]!r} is still open (lanes must not nest)"
                )
            open_span[tid] = (ev["name"], ts)
        else:
            if tid not in open_span:
                errors.append(f"{where}: tid {tid} E {ev['name']!r} without an open B")
                continue
            b_name, b_ts = open_span.pop(tid)
            if b_name != ev["name"]:
                errors.append(
                    f"{where}: tid {tid} E {ev['name']!r} closes B {b_name!r}"
                )
            intervals.append((b_ts, ts))
            span_names.add(b_name)
            spans += 1

    for tid, (name, ts) in sorted(open_span.items()):
        errors.append(f"tid {tid}: B {name!r} at ts {ts} never closed")
    if flight:
        stages = ("decode", "window_wait", "queue_wait", "dispatch", "reply_write")
        missing = [s for s in stages if s not in span_names]
        if missing:
            errors.append(
                "flight dump is missing request stage spans: " + ", ".join(missing)
            )
    elif "coordinator" not in names:
        errors.append("no thread_name metadata names the coordinator lane")
    if spans == 0:
        errors.append("trace contains no complete spans")

    coverage = 0.0
    if intervals:
        intervals.sort()
        wall_start = intervals[0][0]
        wall_end = max(end for _, end in intervals)
        covered, cursor = 0.0, wall_start
        for start, end in intervals:
            if end > cursor:
                covered += end - max(start, cursor)
                cursor = end
        wall = wall_end - wall_start
        coverage = covered / wall if wall > 0 else 1.0
        if coverage < min_coverage:
            errors.append(
                f"span union covers {coverage:.1%} of wall time "
                f"(required {min_coverage:.0%})"
            )

    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return 1
    print(
        f"{path}: {spans} spans on {len(last_ts)} lanes, "
        f"balanced and monotone, {coverage:.1%} wall coverage"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
