#!/usr/bin/env python3
"""Lint a Prometheus text exposition produced by `anyseq-obs`.

Usage: check_prometheus.py <exposition.prom> [--require NAME]...

Fails (exit 1) unless the exposition is well-formed:
  * every non-comment line parses as `name[{labels}] value` with a
    finite numeric value and metric/label names matching the
    Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`), label values
    quoted with only `\\"`, `\\\\` and `\\n` escapes,
  * every sample belongs to a `# TYPE` family declared earlier in the
    stream, each family is declared exactly once, and histogram
    families expose only `_bucket` / `_sum` / `_count` samples,
  * per histogram series (family + labels minus `le`), every `_bucket`
    carries an `le` label, counts are cumulative (non-decreasing as
    `le` rises), an `le="+Inf"` bucket is present and equals the
    series' `_count`,
  * counter samples are non-negative.

`--require NAME` (repeatable) additionally demands at least one sample
of family NAME — the serve-smoke CI job uses it to pin the daemon's
stable cold-scrape key set (a metric that only appears after traffic
would make dashboards and alerts race the first request).

Guards the `STATS` scrape / `--metrics` artifact (format documented in
docs/ARCHITECTURE.md) against malformed output and key-set drift.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One label pair: name="value" with the three legal escapes.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(body: str, where: str, errors: list) -> dict:
    """Parses `k="v",k2="v2"` into a dict, reporting malformed parts."""
    out = {}
    pos = 0
    while pos < len(body):
        m = LABEL_RE.match(body, pos)
        if not m:
            errors.append(f"{where}: malformed label set at ...{body[pos:]!r}")
            return out
        if m.group(1) in out:
            errors.append(f"{where}: duplicate label {m.group(1)!r}")
        out[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"{where}: expected ',' between labels")
                return out
            pos += 1
    return out


def family_of(name: str, types: dict) -> str:
    """Maps a sample name to its declared family (histogram suffixes
    fold into the base name)."""
    if name in types:
        return name
    for suffix in HIST_SUFFIXES:
        base = name.removesuffix(suffix)
        if base != name and types.get(base) == "histogram":
            return base
    return name


def main() -> int:
    argv = list(sys.argv[1:])
    required = []
    while "--require" in argv:
        i = argv.index("--require")
        try:
            required.append(argv[i + 1])
        except IndexError:
            print(__doc__, file=sys.stderr)
            return 2
        del argv[i : i + 2]
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[0]

    errors = []
    types = {}  # family -> declared type
    seen_families = set()  # families with at least one sample
    samples = 0
    # (family, labels-minus-le) -> list of (le, count) for bucket
    # cumulativity, plus the series' _count value.
    buckets = {}
    counts = {}

    with open(path) as fh:
        lines = fh.read().splitlines()

    for n, line in enumerate(lines, 1):
        where = f"line {n}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE comment")
                    continue
                _, _, fam, kind = parts
                if fam in types:
                    errors.append(f"{where}: family {fam!r} declared twice")
                types[fam] = kind
            continue

        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$", line)
        if not m:
            errors.append(f"{where}: unparseable sample {line!r}")
            continue
        name, _, label_body, value_str = m.groups()
        labels = parse_labels(label_body or "", where, errors)
        try:
            value = float(value_str)
        except ValueError:
            errors.append(f"{where}: non-numeric value {value_str!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            errors.append(f"{where}: non-finite value {value_str!r}")
            continue

        fam = family_of(name, types)
        samples += 1
        seen_families.add(fam)
        kind = types.get(fam)
        if kind is None:
            errors.append(f"{where}: sample {name!r} has no # TYPE declaration")
            continue
        if kind == "counter" and value < 0:
            errors.append(f"{where}: counter {name!r} is negative ({value})")
        if kind == "histogram":
            if name == fam or not name.startswith(fam):
                errors.append(
                    f"{where}: histogram family {fam!r} exposes bare sample {name!r}"
                )
                continue
            suffix = name[len(fam) :]
            if suffix not in HIST_SUFFIXES:
                errors.append(f"{where}: unexpected histogram suffix {suffix!r}")
                continue
            series = (fam, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            if suffix == "_bucket":
                if "le" not in labels:
                    errors.append(f"{where}: _bucket sample without an le label")
                    continue
                le = labels["le"]
                bound = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(series, []).append((bound, value, n))
            elif suffix == "_count":
                counts[series] = (value, n)
        elif NAME_RE.match(name) and name != fam:
            errors.append(f"{where}: sample {name!r} under mismatched family {fam!r}")

    for series, entries in buckets.items():
        fam, labels = series
        tag = f"{fam}{{{', '.join(f'{k}={v!r}' for k, v in labels)}}}"
        entries.sort(key=lambda e: e[0])
        prev = -math.inf, 0.0
        for bound, acc, n in entries:
            if acc < prev[1]:
                errors.append(
                    f"line {n}: {tag} bucket le={bound} count {acc} "
                    f"drops below the previous bucket's {prev[1]}"
                )
            prev = bound, acc
        if not entries or entries[-1][0] != math.inf:
            errors.append(f"{tag}: no le=\"+Inf\" bucket")
        elif series in counts and entries[-1][1] != counts[series][0]:
            errors.append(
                f"{tag}: le=\"+Inf\" bucket {entries[-1][1]} != _count {counts[series][0]}"
            )
        if series not in counts:
            errors.append(f"{tag}: histogram series without a _count sample")

    for fam in required:
        if fam not in seen_families:
            errors.append(f"required family {fam!r} has no samples")

    if samples == 0:
        errors.append("exposition contains no samples")

    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return 1
    print(
        f"{path}: {samples} samples across {len(seen_families)} families, "
        f"{len(buckets)} histogram series cumulative and closed"
        + (f", {len(required)} required families present" if required else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
