#!/usr/bin/env python3
"""Validate a batch_throughput (or serve_throughput) JSON report.

Usage: check_bench_report.py <report.json> <threads> [long_len] [dup_frac] [semi_len] [local_len] [huge_len]
       check_bench_report.py --serve <report.json>

`--serve` validates a `serve_throughput` report instead: the serving
metrics `serve.requests`, `serve.batches` and `serve.window_occupancy`
must be present and positive, `serve.rejected` present (zero is the
healthy value), the client-side throughput keys `serve.wall_s` /
`serve.pairs_per_s` / `serve.gcups` positive, the per-verb request
latency quantiles `serve.req_p{50,95,99}_us` (score) and
`serve.align_req_p{50,95,99}_us` (align) positive, and the tracing
keys `serve.slow_total` / `serve.req_obs_overhead_frac` present (zero
is the healthy value for both).

Fails (exit 1) if the report is missing any required key:
  * `<mode>.<backend>_1t` and `<mode>.<backend>_<threads>t` for every
    mode in {score, align} and backend in {scalar, simd, gpu-sim},
  * `<mode>.bytes_copied` and `<mode>.peak_batch_mb` per mode,
  * the observability keys (the section always runs):
    `obs.score_gcups_{off,on}` and `obs.kernel_spans` /
    `obs.kernel_p{50,95,99}_ns` positive, `obs.overhead_frac` and
    `obs.trace_spans` present, plus all nine `stage.<name>_ns` wall
    totals with a non-zero `stage.kernel_ns` (a traced run that spent
    no time in kernels means the span plumbing is broken),
  * `long.score_gcups` / `long.align_gcups` when `long_len` > 0,
  * the kind-generic SIMD bin keys when `semi_len` > 0:
    `semi.{score,align}_gcups`, `semi.score_gcups_scalar`,
    `semi.score_speedup`, `semi.score_gcups_xdrop` all positive and
    `xdrop.retired_lanes` present (lane retirement is
    workload-dependent, so zero is allowed),
  * the Local bin keys when `local_len` > 0: `local.{score,align}_gcups`,
    `local.score_gcups_scalar` and `local.score_speedup` positive,
  * the sharded chromosome-scale bin keys when `huge_len` > 0:
    `huge.{score,align}_gcups`, `huge.score_gcups_unsharded`,
    `huge.peak_shard_mb`, `huge.budget_mb`, `huge.seam_bytes` and
    `sched.shards` all positive — and additionally
    `huge.peak_shard_mb <= huge.budget_mb` (a sharded run whose
    resident peak exceeds the unsharded border budget defeats the
    point of sharding),
  * the duplicated-read / result-cache keys when `dup_frac` > 0:
    `dup.hit_rate`, `dup.{score,align}_gcups` (+ `_nocache` baselines
    and `dup.{score,align}_speedup`) and the cache counters
    `cache.{hits,misses,bytes,evictions}` — with a non-zero
    `dup.hit_rate` and `cache.hits` (a duplicated workload that never
    hits the cache means the cache is broken),
or if a present GCUPS value is not a positive number. Guards the bench
report format (documented in docs/ARCHITECTURE.md) and the zero-copy /
cache counters against silent regressions.
"""

import json
import sys

MODES = ("score", "align")
BACKENDS = ("scalar", "simd", "gpu-sim")
STAGES = (
    "queue_wait",
    "cache_probe",
    "hash",
    "gather",
    "transpose",
    "kernel",
    "traceback",
    "cache_insert",
    "merge",
)


def check(path: str, required: list) -> int:
    """Shared validator: every (key, must_be_positive) pair present and sane."""
    with open(path) as fh:
        report = json.load(fh)
    missing = [key for key, _ in required if key not in report]
    bad = [
        key
        for key, positive in required
        if key in report
        and (
            not isinstance(report[key], (int, float))
            or (positive and not report[key] > 0)
        )
    ]
    if missing:
        print(f"{path}: missing keys: {', '.join(sorted(missing))}", file=sys.stderr)
    if bad:
        print(f"{path}: non-positive/invalid values: {', '.join(sorted(bad))}", file=sys.stderr)
    if missing or bad:
        return 1
    print(f"{path}: {len(required)} required keys present and sane")
    return 0


def main_serve(path: str) -> int:
    required = [
        ("serve.requests", True),
        ("serve.batches", True),
        ("serve.rejected", False),
        ("serve.window_occupancy", True),
        ("serve.clients", True),
        ("serve.pairs_per_req", True),
        ("serve.wall_s", True),
        ("serve.pairs_per_s", True),
        ("serve.gcups", True),
    ]
    # Request-scoped observability: per-verb latency quantiles (the
    # daemon refreshes the gauges at scrape time), the slow-request
    # counter, and the measured cost of leaving tracing always-on.
    for verb in ("req", "align_req"):
        for q in ("p50", "p95", "p99"):
            required.append((f"serve.{verb}_{q}_us", True))
    required.append(("serve.slow_total", False))
    required.append(("serve.req_obs_overhead_frac", False))
    return check(path, required)


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--serve":
        return main_serve(sys.argv[2])
    if len(sys.argv) not in (3, 4, 5, 6, 7, 8):
        print(__doc__, file=sys.stderr)
        return 2
    path, threads = sys.argv[1], int(sys.argv[2])
    long_len = int(sys.argv[3]) if len(sys.argv) >= 4 else 0
    dup_frac = float(sys.argv[4]) if len(sys.argv) >= 5 else 0.0
    semi_len = int(sys.argv[5]) if len(sys.argv) >= 6 else 0
    local_len = int(sys.argv[6]) if len(sys.argv) >= 7 else 0
    huge_len = int(sys.argv[7]) if len(sys.argv) >= 8 else 0

    required = []
    for mode in MODES:
        for backend in BACKENDS:
            required.append((f"{mode}.{backend}_1t", True))
            if threads > 1:
                required.append((f"{mode}.{backend}_{threads}t", True))
        required.append((f"{mode}.bytes_copied", False))
        required.append((f"{mode}.peak_batch_mb", False))
    # Observability section (always present): off/on throughput, the
    # merged kernel-latency histogram summary, and the stage wall
    # totals drained from the traced run's spans.
    required.append(("obs.score_gcups_off", True))
    required.append(("obs.score_gcups_on", True))
    required.append(("obs.overhead_frac", False))
    required.append(("obs.trace_spans", True))
    required.append(("obs.kernel_spans", True))
    for q in ("p50", "p95", "p99"):
        required.append((f"obs.kernel_{q}_ns", True))
    for stage in STAGES:
        required.append((f"stage.{stage}_ns", stage == "kernel"))
    if long_len > 0:
        required.append(("long.score_gcups", True))
        required.append(("long.align_gcups", True))
    if semi_len > 0:
        # The kind-generic SIMD bin: semi-global score/align GCUPS,
        # the scalar baseline the speedup is measured against, and the
        # X-drop sub-run. Lane retirement depends on the decoy batch,
        # so the counter only has to be present.
        for key in (
            "semi.score_gcups",
            "semi.align_gcups",
            "semi.score_gcups_scalar",
            "semi.score_speedup",
            "semi.score_gcups_xdrop",
        ):
            required.append((key, True))
        required.append(("xdrop.retired_lanes", False))
    if local_len > 0:
        for key in (
            "local.score_gcups",
            "local.align_gcups",
            "local.score_gcups_scalar",
            "local.score_speedup",
        ):
            required.append((key, True))
    if huge_len > 0:
        # The sharded chromosome-scale bin: throughput for both runs,
        # the shard/seam counters proving the chain actually stitched,
        # and the memory-bound pair checked below.
        for key in (
            "huge.score_gcups",
            "huge.align_gcups",
            "huge.score_gcups_unsharded",
            "huge.peak_shard_mb",
            "huge.budget_mb",
            "huge.seam_bytes",
            "sched.shards",
        ):
            required.append((key, True))
    if dup_frac > 0:
        # A duplicated-read smoke run must actually hit the cache.
        required.append(("dup.hit_rate", True))
        required.append(("cache.hits", True))
        required.append(("cache.misses", True))
        required.append(("cache.bytes", True))
        required.append(("cache.evictions", False))
        for mode in MODES:
            required.append((f"dup.{mode}_gcups", True))
            required.append((f"dup.{mode}_gcups_nocache", True))
            required.append((f"dup.{mode}_speedup", True))

    rc = check(path, required)
    if rc == 0 and huge_len > 0:
        with open(path) as fh:
            report = json.load(fh)
        peak, budget = report["huge.peak_shard_mb"], report["huge.budget_mb"]
        if peak > budget:
            print(
                f"{path}: huge.peak_shard_mb {peak} exceeds huge.budget_mb {budget}",
                file=sys.stderr,
            )
            return 1
        print(f"{path}: sharded peak {peak} MB within unsharded budget {budget:.1f} MB")
    return rc


if __name__ == "__main__":
    sys.exit(main())
