//! Long-genome pairwise alignment: the paper's use case (i).
//!
//! Simulates a bacterial-scale genome and a diverged relative, then
//! aligns them with the multithreaded dynamic-wavefront engine and the
//! SIMD inter-tile engine, reporting GCUPS for each — and finally
//! dispatches the same pair through the engine's `BatchScheduler` as a
//! borrowed `BatchView`, showing that the exclusive wavefront unit
//! runs without cloning a single genome byte (`sched.bytes_copied = 0`).
//!
//! Run: `cargo run --release --example long_genome [len] [threads]`

use anyseq::prelude::*;
use anyseq::simd::simd_tiled_score_pass;
use anyseq_seq::BatchView;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let len: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
    });

    println!("simulating a {len} bp genome pair (2% divergence)...");
    let mut sim = GenomeSim::new(2024);
    let a = sim.generate(len);
    let b = sim.mutate(&a, 0.02);
    let cells = (a.len() * b.len()) as f64;

    let scheme = global(affine(simple(2, -1), -2, -1));
    let cfg = ParallelCfg::threads(threads).with_tile(512);

    let t0 = Instant::now();
    let score = scheme.score_parallel(&a, &b, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "dynamic wavefront ({threads} threads): score {score}, {:.2} GCUPS",
        cells / dt / 1e9
    );

    let t0 = Instant::now();
    let simd_score = simd_tiled_score_pass::<_, _, 16>(
        scheme.gap(),
        scheme.subst(),
        a.codes(),
        b.codes(),
        scheme.gap().open(),
        &cfg,
    )
    .score;
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(simd_score, score);
    println!(
        "SIMD inter-tile (16 lanes):            score {simd_score}, {:.2} GCUPS",
        cells / dt / 1e9
    );

    let t0 = Instant::now();
    let aln = scheme.align_parallel(&a, &b, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(aln.score, score);
    println!(
        "traceback (Hirschberg, parallel):      {} ops, identity {:.2}%, {:.2} GCUPS",
        aln.len(),
        100.0 * aln.identity(),
        2.0 * cells / dt / 1e9 // divide-and-conquer relaxes ~2x the cells
    );

    // The engine path: the pair enters the scheduler as a borrowed
    // view; the exclusive wavefront unit receives PairRefs (pointers),
    // so the multi-Mbp genomes are never deep-cloned at gather time.
    let pairs = vec![(a, b)];
    let view = BatchView::from_pairs(&pairs);
    let spec = SchemeSpec::global_affine(2, -1, -2, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    let run = BatchScheduler::new(BatchCfg::threads(threads)).score_batch(&dispatch, &spec, &view);
    assert_eq!(run.results[0], score);
    assert_eq!(
        run.stats.counters["sched.bytes_copied"], 0,
        "exclusive dispatch must not clone the genomes"
    );
    println!(
        "engine batch (auto, zero-copy):        score {}, {:.2} GCUPS [{}]",
        run.results[0],
        run.stats.gcups(),
        run.stats.summary()
    );
}
