//! Accelerator backends: the GPU execution-model simulator and the FPGA
//! systolic array, with modeled GCUPS and energy efficiency — the
//! paper's "backends-as-values" composition (§IV).
//!
//! Run: `cargo run --release --example accelerators [len]`

use anyseq::fpga::{gcups_per_watt, SystolicArray};
use anyseq::gpu::{Device, GpuAligner, KernelShape};
use anyseq::prelude::*;

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let mut sim = GenomeSim::new(5);
    let a = sim.generate(len);
    let b = sim.mutate(&a, 0.03);
    let scheme = global(affine(simple(2, -1), -2, -1));
    let cpu_score = scheme.score(&a, &b);

    // ---- GPU (Titan V model): striped tiles, phased diagonals,
    // coalesced borders -------------------------------------------------
    let gpu = GpuAligner::new(Device::titan_v()).with_tile(768);
    let run = gpu.score(&scheme, &a, &b);
    assert_eq!(run.score, cpu_score, "GPU simulation is bit-exact");
    println!(
        "GPU  {}: score {}, modeled {:.1} GCUPS \
         ({} launches, {} blocks, {} transactions)",
        gpu.device.name,
        run.score,
        run.stats.gcups(&gpu.device),
        run.stats.launches,
        run.stats.blocks,
        run.stats.transactions,
    );

    // The same device with the kernel refinements disabled (NVBio-like):
    let naive = GpuAligner::new(Device::titan_v())
        .with_tile(768)
        .with_shape(KernelShape {
            block_threads: 64,
            phased: false,
            coalesced: false,
        });
    let nrun = naive.score(&scheme, &a, &b);
    println!(
        "GPU  unphased/uncoalesced: modeled {:.1} GCUPS (slower by {:.2}x)",
        nrun.stats.gcups(&naive.device),
        run.stats.gcups(&gpu.device) / nrun.stats.gcups(&naive.device),
    );

    // ---- FPGA (ZCU104 model): 128-PE systolic array --------------------
    let arr = SystolicArray::zcu104(128);
    let frun = arr.score(scheme.gap(), scheme.subst(), &a, &b);
    assert_eq!(frun.score, cpu_score, "FPGA simulation is bit-exact");
    let fpga_gcups = arr.gcups(&frun.stats);
    println!(
        "FPGA {}: score {}, modeled {:.1} GCUPS over {} stripes",
        arr.name, frun.score, fpga_gcups, frun.stats.stripes,
    );
    println!(
        "energy: FPGA {:.2} GCUPS/W vs GPU {:.2} GCUPS/W (paper Table II shape: FPGA > 4x GPU)",
        gcups_per_watt(fpga_gcups, arr.watts),
        gcups_per_watt(run.stats.gcups(&gpu.device), 250.0),
    );
}
