//! Short-read batch scoring: the paper's use case (ii), driven through
//! the `anyseq-engine` batch subsystem.
//!
//! Simulates Illumina-style 150 bp read pairs (Mason-like) and scores
//! them three ways — the raw scalar and SIMD batch entry points, then
//! the engine's `BatchScheduler` with auto dispatch (length binning,
//! worker pool, per-backend stats) — asserting bit-identical results.
//!
//! Run: `cargo run --release --example read_batch [pairs] [threads]`

use anyseq::prelude::*;
use anyseq::simd::score_batch_simd;
use anyseq_seq::BatchView;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let count: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
    });

    println!("simulating {count} read pairs from a 2 Mbp reference...");
    let reference = GenomeSim::new(7).generate(2_000_000);
    let mut rs = ReadSim::new(ReadSimProfile::default(), 99);
    let pairs: Vec<(Seq, Seq)> = rs
        .simulate_pairs(&reference, count)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect();
    let cells: f64 = pairs.iter().map(|(q, s)| (q.len() * s.len()) as f64).sum();

    let scheme = global(linear(simple(2, -1), -1));

    let t0 = Instant::now();
    let scalar = score_batch_parallel(&scheme, &pairs, threads);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "scalar batch  ({threads} threads): {:.2} GCUPS",
        cells / dt / 1e9
    );

    // Borrowed zero-copy view over the owned batch: every layer below
    // this point moves 32-byte PairRefs, never sequence bytes.
    let view = BatchView::from_pairs(&pairs);

    let t0 = Instant::now();
    let simd = score_batch_simd::<_, _, _, 16>(&scheme, view.refs(), threads);
    let dt = t0.elapsed().as_secs_f64();
    println!("SIMD batch    (16 lanes):   {:.2} GCUPS", cells / dt / 1e9);
    assert_eq!(scalar, simd, "engines must agree bit-exactly");

    // The same batch through the engine subsystem: one SchemeSpec, one
    // dispatch policy, scheduling and backend choice handled for you.
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
    let run = scheduler.score_batch(&dispatch, &spec, &view);
    println!("engine batch  (auto):       {:.2} GCUPS", run.stats.gcups());
    println!("  {}", run.stats.summary());
    assert_eq!(scalar, run.results, "the engine must agree bit-exactly");
    assert_eq!(
        run.stats.counters["sched.bytes_copied"], 0,
        "the scheduler gather must stay zero-copy"
    );

    let mean: f64 = scalar.iter().map(|&v| v as f64).sum::<f64>() / scalar.len() as f64;
    println!("mean pair score: {mean:.1} (max possible 300)");
}
