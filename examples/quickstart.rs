//! Quickstart: compose a scheme, score and align two sequences.
//!
//! Run: `cargo run --release --example quickstart`

use anyseq::prelude::*;

fn main() {
    // Parse sequences (FASTA files work too: anyseq::seq::fasta).
    let q = Seq::from_ascii(b"ACGTACGTTGACCAGTTGACAGT").unwrap();
    let s = Seq::from_ascii(b"ACGTACGTTGCCAGTTGACAAGT").unwrap();

    // The paper's interface style (§III-C): behaviour is composed from
    // functions — alignment kind ∘ gap model ∘ substitution scoring.
    // Each composition monomorphizes into a dedicated engine.
    let scheme = global(affine(simple(2, -1), -2, -1));

    // Score only (linear space):
    let score = scheme.score(&q, &s);
    println!("global affine score: {score}");

    // Full alignment (linear-space Hirschberg traceback):
    let aln = scheme.align(&q, &s);
    println!("cigar: {}", aln.cigar());
    println!("identity: {:.1}%", 100.0 * aln.identity());
    let (qa, mid, sa) = aln.render(&q, &s);
    println!("{}", String::from_utf8_lossy(&qa));
    println!("{}", String::from_utf8_lossy(&mid));
    println!("{}", String::from_utf8_lossy(&sa));

    // Other kinds by swapping the outer combinator:
    let local_score = local(linear(simple(2, -1), -2)).score(&q, &s);
    let semi_score = semiglobal(linear(simple(2, -1), -2)).score(&q, &s);
    println!("local: {local_score}, semi-global: {semi_score}");

    // Every alignment self-validates: the ops must recompute to the
    // reported score.
    aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
        .expect("alignment is internally consistent");
}
