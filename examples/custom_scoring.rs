//! Custom scoring: substitution matrices, wildcard handling, and the
//! effect of gap model choice — the paper's "variation of alignment
//! parameters by simple function composition".
//!
//! Run: `cargo run --release --example custom_scoring`

use anyseq::prelude::*;

fn main() {
    let q = Seq::from_ascii(b"ACGTNNACGTACGT").unwrap();
    let s = Seq::from_ascii(b"ACGTACGTTTACGT").unwrap();

    // A matrix scheme treating N as a cheap wildcard:
    let wildcard = MatrixSubst::dna(2, -1, 0);
    let scheme = global(affine(wildcard, -2, -1));
    println!("matrix subst (N free): {}", scheme.score(&q, &s));

    // The same matrix with N penalized like a mismatch:
    let strict = MatrixSubst::dna(2, -1, -1);
    let scheme = global(affine(strict, -2, -1));
    println!("matrix subst (N = mismatch): {}", scheme.score(&q, &s));

    // Transition/transversion-aware scoring (A<->G, C<->T cheaper):
    let mut table = [[-2i32; 5]; 5];
    for (b, row) in table.iter_mut().enumerate().take(4) {
        row[b] = 2;
    }
    table[0][2] = -1; // A->G transition
    table[2][0] = -1;
    table[1][3] = -1; // C->T transition
    table[3][1] = -1;
    for row in table.iter_mut() {
        row[4] = -1;
    }
    table[4] = [-1; 5];
    let titv = MatrixSubst { table };
    let scheme = global(affine(titv, -3, -1));
    let aln = scheme.align(&q, &s);
    println!(
        "transition-aware: score {}, cigar {}",
        aln.score,
        aln.cigar()
    );

    // Gap model comparison on a sequence with one long insertion:
    let a = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
    let mut with_insert = a.codes()[..8].to_vec();
    with_insert.extend_from_slice(&[3, 3, 3, 3, 3, 3]); // TTTTTT inserted
    with_insert.extend_from_slice(&a.codes()[8..]);
    let b = Seq::from_codes(with_insert).unwrap();

    let lin = global(linear(simple(2, -1), -1)).align(&a, &b);
    let aff = global(affine(simple(2, -1), -4, -1)).align(&a, &b);
    println!("linear gaps: {} ({})", lin.score, lin.cigar());
    println!("affine gaps: {} ({})", aff.score, aff.cigar());
    // Affine pricing concentrates the insertion into one run:
    let aff_runs = aff.cigar().matches('D').count();
    assert_eq!(aff_runs, 1, "affine should produce one deletion run");
}
