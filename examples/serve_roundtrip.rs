//! Serving-layer round trip: start the `anyseq-serve` daemon
//! in-process, drive it with four concurrent clients, and check every
//! reply against a locally computed baseline.
//!
//! This is the same traffic shape the CI `serve-smoke` job replays
//! against the standalone `anyseq serve` binary: each client pipelines
//! a handful of score requests over one unix-socket connection, the
//! daemon's micro-batching window coalesces whatever arrives together
//! into shared engine batches, and replies stream back per connection
//! in submission order. A final `STATS` scrape shows the coalescing in
//! the `anyseq_serve_*` metrics.
//!
//! Run: `cargo run --release --example serve_roundtrip`

use anyseq::serve::proto::Results;
use anyseq::serve::{
    ReqKind, SchemeSpec, ServeClient, ServeConfig, Server, SystemClock, WindowCfg,
};
use anyseq_seq::testsupport::read_pairs;
use std::sync::Arc;

const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 6;
const PAIRS_PER_REQ: usize = 16;

fn main() {
    let sock = std::env::temp_dir().join(format!(
        "anyseq-serve-roundtrip-{}.sock",
        std::process::id()
    ));

    // A wide window so all four clients' bursts land in the same
    // batches; production would run the 2 ms default.
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 50_000_000,
            ..WindowCfg::default()
        },
        ..ServeConfig::default()
    };
    let server =
        Server::start(&sock, cfg, Arc::new(SystemClock::new())).expect("daemon start failed");
    println!("daemon listening on {}", server.path().display());

    let spec = SchemeSpec::global_linear(2, -1, -1);
    // Every client sends the same simulated short-read workload, each
    // from its own seed; the baseline is computed per client below.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let pairs = read_pairs(REQS_PER_CLIENT * PAIRS_PER_REQ, 0xC11E47 + c as u64);
                let mut client = ServeClient::connect(&sock).expect("connect failed");
                // Pipeline every request before reading any reply.
                let mut ids = Vec::new();
                for chunk in pairs.chunks(PAIRS_PER_REQ) {
                    ids.push(
                        client
                            .submit_seqs(ReqKind::Score, spec, chunk)
                            .expect("submit failed"),
                    );
                }
                for (req, id) in ids.into_iter().enumerate() {
                    let reply = client.recv().expect("recv failed");
                    let expected: Vec<_> = pairs[req * PAIRS_PER_REQ..(req + 1) * PAIRS_PER_REQ]
                        .iter()
                        .map(|(q, s)| {
                            anyseq::prelude::global(anyseq::prelude::linear(
                                anyseq::prelude::simple(2, -1),
                                -1,
                            ))
                            .score(q, s)
                        })
                        .collect();
                    match reply {
                        anyseq::serve::ServerReply::Response { id: got, results } => {
                            assert_eq!(got, id, "replies must come back in submission order");
                            assert_eq!(
                                results,
                                Results::Scores(expected),
                                "daemon scores must match the local baseline bit-exactly"
                            );
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                client.stats().expect("stats scrape failed")
            })
        })
        .collect();

    let stats = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .next_back()
        .unwrap();

    let total = CLIENTS * REQS_PER_CLIENT;
    println!("{total} requests x {PAIRS_PER_REQ} pairs verified against the local baseline");
    for line in stats
        .lines()
        .filter(|l| l.starts_with("anyseq_serve_") && !l.contains("bucket"))
    {
        println!("  {line}");
    }
    server.shutdown();
    println!("round trip OK");
}
