//! Engine throughput spot check: scalar vs tiled-MT vs SIMD lanes on a
//! 30 kbp pair (single numbers, no statistics — use `cargo bench` for
//! tracked measurements).
//!
//! Run: `cargo run --release --example perfcheck`

use anyseq_core::kind::Global;
use anyseq_core::pass::score_pass;
use anyseq_core::prelude::*;
use anyseq_seq::genome::GenomeSim;
use anyseq_simd::simd_tiled_score_pass;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use std::time::Instant;

fn main() {
    let mut sim = GenomeSim::new(1);
    let q = sim.generate(30_000);
    let s = sim.mutate(&q, 0.05);
    let cells = (q.len() * s.len()) as f64;
    let gap = LinearGap { gap: -1 };
    let aff = AffineGap {
        open: -2,
        extend: -1,
    };
    let subst = simple(2, -1);
    let cfg1 = ParallelCfg {
        threads: 1,
        tile: 512,
        min_parallel_area: 0,
        static_schedule: false,
        shard_cells: 0,
    };
    let cfg8 = ParallelCfg {
        threads: 8,
        tile: 512,
        min_parallel_area: 0,
        static_schedule: false,
        shard_cells: 0,
    };

    macro_rules! t {
        ($name:expr, $e:expr) => {{
            let t0 = Instant::now();
            let v = $e;
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "{:<28} {:>7.2} GCUPS (score {})",
                $name,
                cells / dt / 1e9,
                v
            );
        }};
    }
    t!(
        "scalar 1t linear",
        score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), 0).score
    );
    t!(
        "scalar 1t affine",
        score_pass::<Global, _, _>(&aff, &subst, q.codes(), s.codes(), -2).score
    );
    t!(
        "tiled 8t linear",
        tiled_score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), 0, &cfg8).score
    );
    t!(
        "simd16 1t linear",
        simd_tiled_score_pass::<_, _, 16>(&gap, &subst, q.codes(), s.codes(), 0, &cfg1).score
    );
    t!(
        "simd16 8t linear",
        simd_tiled_score_pass::<_, _, 16>(&gap, &subst, q.codes(), s.codes(), 0, &cfg8).score
    );
    t!(
        "simd32 8t linear",
        simd_tiled_score_pass::<_, _, 32>(&gap, &subst, q.codes(), s.codes(), 0, &cfg8).score
    );
    t!(
        "simd16 8t affine",
        simd_tiled_score_pass::<_, _, 16>(&aff, &subst, q.codes(), s.codes(), -2, &cfg8).score
    );
}
