//! # anyseq — high-performance pairwise sequence alignment via
//! compile-time specialization
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *AnySeq: A High Performance Sequence Alignment Library based on
//! Partial Evaluation* (Müller et al., IPDPS 2020). See `README.md` for a
//! tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use anyseq::prelude::*;
//!
//! let q = Seq::from_ascii(b"ACGTACGT").unwrap();
//! let s = Seq::from_ascii(b"ACGTTACGT").unwrap();
//! let scheme = global(linear(simple(2, -1), -1));
//! assert_eq!(scheme.score(&q, &s), 15);
//! ```

pub use anyseq_baselines as baselines;
pub use anyseq_core as core;
pub use anyseq_engine as engine;
pub use anyseq_fpga_sim as fpga;
pub use anyseq_gpu_sim as gpu;
pub use anyseq_obs as obs;
pub use anyseq_seq as seq;
pub use anyseq_serve as serve;
pub use anyseq_simd as simd;
pub use anyseq_wavefront as wavefront;

/// One-stop imports for applications.
pub mod prelude {
    pub use anyseq_core::prelude::*;
    pub use anyseq_engine::prelude::*;
    pub use anyseq_seq::prelude::*;
    pub use anyseq_wavefront::{score_batch_parallel, ParallelCfg, ParallelExt};
}
