//! Workspace-level integration: every execution backend must produce the
//! same scores as the core scalar engine (which is itself oracle-checked
//! in `anyseq-core`). This is the reproduction's strongest claim: one
//! generic algorithm, many specialized engines, identical results.

use anyseq::fpga::SystolicArray;
use anyseq::gpu::{Device, GpuAligner};
use anyseq::prelude::*;
use anyseq::simd::{score_batch_simd, simd_tiled_score_pass};
use anyseq_baselines::{NvbioLike, ParasailLike, SeqAnLike};
use anyseq_core::kind::Global;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};

fn genome_pair(len: usize, divergence: f64, seed: u64) -> (Seq, Seq) {
    let mut sim = GenomeSim::new(seed);
    let a = sim.generate(len);
    let b = sim.mutate(&a, divergence);
    (a, b)
}

#[test]
fn every_backend_agrees_on_global_scores() {
    for (seed, div) in [(1u64, 0.02), (2, 0.10), (3, 0.30)] {
        let (q, s) = genome_pair(3000, div, seed);
        for (open, ext) in [(0, -1), (-2, -1), (-5, -2)] {
            let scheme = global(affine(simple(2, -1), open, ext));
            let expected = scheme.score(&q, &s);

            let cfg = ParallelCfg {
                threads: 6,
                tile: 128,
                min_parallel_area: 0,
                static_schedule: false,
            };
            assert_eq!(
                tiled_score_pass::<Global, _, _>(
                    scheme.gap(),
                    scheme.subst(),
                    q.codes(),
                    s.codes(),
                    open,
                    &cfg
                )
                .score,
                expected,
                "wavefront seed={seed}"
            );
            assert_eq!(
                simd_tiled_score_pass::<_, _, 16>(
                    scheme.gap(),
                    scheme.subst(),
                    q.codes(),
                    s.codes(),
                    open,
                    &cfg
                )
                .score,
                expected,
                "simd seed={seed}"
            );
            let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
            assert_eq!(gpu.score(&scheme, &q, &s).score, expected, "gpu seed={seed}");
            let fpga = SystolicArray::zcu104(64);
            assert_eq!(
                fpga.score(scheme.gap(), scheme.subst(), &q, &s).score,
                expected,
                "fpga seed={seed}"
            );
            let mut seqan = SeqAnLike::new(4);
            seqan.tile = 128;
            assert_eq!(seqan.score(&scheme, &q, &s), expected, "seqan seed={seed}");
            let mut parasail = ParasailLike::new(4);
            parasail.tile = 128;
            assert_eq!(parasail.score(&scheme, &q, &s), expected, "parasail seed={seed}");
            let nvbio = NvbioLike::new(Device::titan_v());
            assert_eq!(nvbio.score(&scheme, &q, &s).score, expected, "nvbio seed={seed}");
        }
    }
}

#[test]
fn every_traceback_backend_is_optimal_and_valid() {
    let (q, s) = genome_pair(2000, 0.08, 11);
    let scheme = global(affine(simple(2, -1), -2, -1));
    let expected = scheme.score(&q, &s);

    let check = |name: &str, aln: Alignment| {
        assert_eq!(aln.score, expected, "{name} score");
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    };

    check("scalar", scheme.align(&q, &s));
    check(
        "parallel",
        scheme.align_parallel(&q, &s, &ParallelCfg::threads(6).with_tile(128)),
    );
    let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
    check("gpu", gpu.align(&scheme, &q, &s).0);
    check("seqan-like", SeqAnLike::new(4).align(&scheme, &q, &s));
    check("parasail-like", ParasailLike::new(4).align(&scheme, &q, &s));
    check("nvbio-like", NvbioLike::new(Device::titan_v()).align(&scheme, &q, &s).0);
}

#[test]
fn read_batches_agree_across_engines() {
    let reference = GenomeSim::new(21).generate(200_000);
    let mut rs = ReadSim::new(ReadSimProfile::default(), 22);
    let pairs: Vec<(Seq, Seq)> = rs
        .simulate_pairs(&reference, 400)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect();
    let scheme = global(linear(simple(2, -1), -1));

    let scalar = score_batch_parallel(&scheme, &pairs, 8);
    let simd16 = score_batch_simd::<_, _, 16>(&scheme, &pairs, 8);
    let simd32 = score_batch_simd::<_, _, 32>(&scheme, &pairs, 8);
    assert_eq!(scalar, simd16);
    assert_eq!(scalar, simd32);

    let gpu = GpuAligner::new(Device::titan_v());
    let (gpu_scores, stats) = gpu.score_batch(&scheme, &pairs);
    assert_eq!(scalar, gpu_scores);
    assert!(stats.gcups(&gpu.device) > 0.0);
}

#[test]
fn all_kinds_cross_checked_on_the_facade() {
    let (q, s) = genome_pair(800, 0.15, 31);
    let sc = affine(simple(2, -1), -2, -1);
    for (name, score, aln) in [
        ("global", global(sc).score(&q, &s), global(sc).align(&q, &s)),
        ("local", local(sc).score(&q, &s), local(sc).align(&q, &s)),
        (
            "semiglobal",
            semiglobal(sc).score(&q, &s),
            semiglobal(sc).align(&q, &s),
        ),
        (
            "free_end",
            free_end(sc).score(&q, &s),
            free_end(sc).align(&q, &s),
        ),
    ] {
        assert_eq!(aln.score, score, "{name}");
    }
}

#[test]
fn fasta_round_trip_through_alignment() {
    use anyseq::seq::fasta;
    let text = b">query first\nACGTACGTTGACCA\n>subject second\nACGTACGTTGCCAA\n";
    let records = fasta::read_fasta(&text[..]).unwrap();
    assert_eq!(records.len(), 2);
    let scheme = global(linear(simple(2, -1), -1));
    let aln = scheme.align(&records[0].seq, &records[1].seq);
    aln.validate::<Global, _, _>(
        &records[0].seq,
        &records[1].seq,
        scheme.gap(),
        scheme.subst(),
    )
    .unwrap();
}
