//! Workspace-level integration: every execution backend must produce the
//! same scores as the core scalar engine (which is itself oracle-checked
//! in `anyseq-core`). This is the reproduction's strongest claim: one
//! generic algorithm, many specialized engines, identical results.

use anyseq::fpga::SystolicArray;
use anyseq::gpu::{Device, GpuAligner};
use anyseq::prelude::*;
use anyseq::simd::{score_batch_simd, simd_tiled_score_pass};
use anyseq_baselines::{NvbioLike, ParasailLike, SeqAnLike};
use anyseq_core::kind::Global;
use anyseq_engine::{
    BackendId, BatchCfg, BatchScheduler, Dispatch, Engine, GapSpec, KindSpec, Policy, SchemeSpec,
};
use anyseq_seq::{BatchView, PairRef};
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use proptest::prelude::*;

fn genome_pair(len: usize, divergence: f64, seed: u64) -> (Seq, Seq) {
    let mut sim = GenomeSim::new(seed);
    let a = sim.generate(len);
    let b = sim.mutate(&a, divergence);
    (a, b)
}

#[test]
fn every_backend_agrees_on_global_scores() {
    for (seed, div) in [(1u64, 0.02), (2, 0.10), (3, 0.30)] {
        let (q, s) = genome_pair(3000, div, seed);
        for (open, ext) in [(0, -1), (-2, -1), (-5, -2)] {
            let scheme = global(affine(simple(2, -1), open, ext));
            let expected = scheme.score(&q, &s);

            let cfg = ParallelCfg {
                threads: 6,
                tile: 128,
                min_parallel_area: 0,
                static_schedule: false,
                shard_cells: 0,
            };
            assert_eq!(
                tiled_score_pass::<Global, _, _>(
                    scheme.gap(),
                    scheme.subst(),
                    q.codes(),
                    s.codes(),
                    open,
                    &cfg
                )
                .score,
                expected,
                "wavefront seed={seed}"
            );
            assert_eq!(
                simd_tiled_score_pass::<_, _, 16>(
                    scheme.gap(),
                    scheme.subst(),
                    q.codes(),
                    s.codes(),
                    open,
                    &cfg
                )
                .score,
                expected,
                "simd seed={seed}"
            );
            let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
            assert_eq!(
                gpu.score(&scheme, &q, &s).score,
                expected,
                "gpu seed={seed}"
            );
            let fpga = SystolicArray::zcu104(64);
            assert_eq!(
                fpga.score(scheme.gap(), scheme.subst(), &q, &s).score,
                expected,
                "fpga seed={seed}"
            );
            let mut seqan = SeqAnLike::new(4);
            seqan.tile = 128;
            assert_eq!(seqan.score(&scheme, &q, &s), expected, "seqan seed={seed}");
            let mut parasail = ParasailLike::new(4);
            parasail.tile = 128;
            assert_eq!(
                parasail.score(&scheme, &q, &s),
                expected,
                "parasail seed={seed}"
            );
            let nvbio = NvbioLike::new(Device::titan_v());
            assert_eq!(
                nvbio.score(&scheme, &q, &s).score,
                expected,
                "nvbio seed={seed}"
            );
        }
    }
}

#[test]
fn every_traceback_backend_is_optimal_and_valid() {
    let (q, s) = genome_pair(2000, 0.08, 11);
    let scheme = global(affine(simple(2, -1), -2, -1));
    let expected = scheme.score(&q, &s);

    let check = |name: &str, aln: Alignment| {
        assert_eq!(aln.score, expected, "{name} score");
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    };

    check("scalar", scheme.align(&q, &s));
    check(
        "parallel",
        scheme.align_parallel(&q, &s, &ParallelCfg::threads(6).with_tile(128)),
    );
    let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
    check("gpu", gpu.align(&scheme, q.codes(), s.codes()).0);
    check("seqan-like", SeqAnLike::new(4).align(&scheme, &q, &s));
    check("parasail-like", ParasailLike::new(4).align(&scheme, &q, &s));
    check(
        "nvbio-like",
        NvbioLike::new(Device::titan_v()).align(&scheme, &q, &s).0,
    );
}

#[test]
fn read_batches_agree_across_engines() {
    let reference = GenomeSim::new(21).generate(200_000);
    let mut rs = ReadSim::new(ReadSimProfile::default(), 22);
    let pairs: Vec<(Seq, Seq)> = rs
        .simulate_pairs(&reference, 400)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect();
    let scheme = global(linear(simple(2, -1), -1));

    let view = BatchView::from_pairs(&pairs);
    let scalar = score_batch_parallel(&scheme, &pairs, 8);
    let simd16 = score_batch_simd::<_, _, _, 16>(&scheme, view.refs(), 8);
    let simd32 = score_batch_simd::<_, _, _, 32>(&scheme, view.refs(), 8);
    assert_eq!(scalar, simd16);
    assert_eq!(scalar, simd32);

    let gpu = GpuAligner::new(Device::titan_v());
    let (gpu_scores, stats) = gpu.score_batch(&scheme, view.refs());
    assert_eq!(scalar, gpu_scores);
    assert!(stats.gcups(&gpu.device) > 0.0);
}

#[test]
fn all_kinds_cross_checked_on_the_facade() {
    let (q, s) = genome_pair(800, 0.15, 31);
    let sc = affine(simple(2, -1), -2, -1);
    for (name, score, aln) in [
        ("global", global(sc).score(&q, &s), global(sc).align(&q, &s)),
        ("local", local(sc).score(&q, &s), local(sc).align(&q, &s)),
        (
            "semiglobal",
            semiglobal(sc).score(&q, &s),
            semiglobal(sc).align(&q, &s),
        ),
        (
            "free_end",
            free_end(sc).score(&q, &s),
            free_end(sc).align(&q, &s),
        ),
    ] {
        assert_eq!(aln.score, score, "{name}");
    }
}

// ------------------------------------------------------------------
// anyseq-engine: the BatchScheduler must be a drop-in replacement for
// sequential Scheme::align/score on every backend — same scores, same
// CIGARs, input order — for arbitrary batch shapes, including the
// fallback path of backends that refuse a request.
// ------------------------------------------------------------------

/// Random ragged batch from (seeded) dimensions.
fn random_batch(lens: &[(usize, usize)], seed: u64) -> Vec<(Seq, Seq)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    lens.iter()
        .map(|&(n, m)| {
            (
                Seq::from_codes((0..n).map(|_| rng.gen_range(0..4)).collect()).unwrap(),
                Seq::from_codes((0..m).map(|_| rng.gen_range(0..4)).collect()).unwrap(),
            )
        })
        .collect()
}

fn scheduler_for(threads: usize, chunk: usize) -> BatchScheduler {
    BatchScheduler::new(BatchCfg {
        threads,
        bin_quantum: 16,
        chunk_pairs: chunk,
    })
}

/// The engine contract's alignment check: the reported score must be
/// the scalar optimum and the operation sequence must replay to
/// exactly that score (CIGAR tie-breaks may differ between backends).
fn assert_replays(spec: &SchemeSpec, q: &Seq, s: &Seq, aln: &Alignment, ctx: &str) {
    assert_eq!(aln.score, spec.score_scalar(q, s), "{ctx}: score");
    anyseq_engine::with_scheme!(spec, |scheme, K| {
        aln.validate::<K, _, _>(q, s, scheme.gap(), scheme.subst())
            .unwrap_or_else(|e| panic!("{ctx}: {e} (cigar {})", aln.cigar()));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_scheduler_scores_equal_sequential_on_every_backend(
        lens in prop::collection::vec((1usize..220, 1usize..220), 1..30),
        seed in 0u64..1000,
        threads in 1usize..5,
        chunk in prop_oneof![Just(3usize), Just(16), Just(512)],
        affine_gaps in prop_oneof![Just(false), Just(true)],
    ) {
        let pairs = random_batch(&lens, seed);
        let spec = if affine_gaps {
            SchemeSpec::global_affine(2, -1, -2, -1)
        } else {
            SchemeSpec::global_linear(2, -1, -1)
        };
        let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
        let sched = scheduler_for(threads, chunk);
        for policy in [
            Policy::Auto,
            Policy::Fixed(BackendId::Scalar),
            Policy::Fixed(BackendId::Simd),
            Policy::Fixed(BackendId::Wavefront),
            Policy::Fixed(BackendId::GpuSim),
        ] {
            let dispatch = Dispatch::standard(policy);
            let run = sched.score_pairs(&dispatch, &spec, &pairs);
            prop_assert_eq!(&run.results, &expected, "policy {:?}", policy);
            prop_assert_eq!(run.stats.pairs as usize, pairs.len());
        }
    }

    #[test]
    fn batch_scheduler_alignments_equal_sequential(
        lens in prop::collection::vec((1usize..150, 1usize..150), 1..16),
        seed in 0u64..1000,
        threads in 1usize..4,
        kind in prop_oneof![
            Just(KindSpec::Global),
            Just(KindSpec::Local),
            Just(KindSpec::SemiGlobal),
            Just(KindSpec::FreeEnd),
        ],
    ) {
        let pairs = random_batch(&lens, seed ^ 0xa11a);
        let spec = SchemeSpec {
            kind,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Affine { open: -2, extend: -1 },
        };
        let sched = scheduler_for(threads, 8);
        for policy in [
            Policy::Auto,
            Policy::Fixed(BackendId::Simd),
            Policy::Fixed(BackendId::GpuSim),
        ] {
            let dispatch = Dispatch::standard(policy);
            let run = sched.align_pairs(&dispatch, &spec, &pairs);
            for (k, (q, s)) in pairs.iter().enumerate() {
                assert_replays(
                    &spec,
                    q,
                    s,
                    &run.results[k],
                    &format!("{kind:?} policy {policy:?} pair {k}"),
                );
            }
        }
    }

    #[test]
    fn simd_lane_cigars_replay_to_the_reported_score(
        lens in prop::collection::vec((1usize..200, 1usize..200), 1..24),
        seed in 0u64..1000,
        threads in 1usize..5,
        affine_gaps in prop_oneof![Just(false), Just(true)],
        kind in prop_oneof![
            Just(KindSpec::Global),
            Just(KindSpec::SemiGlobal),
            Just(KindSpec::Local),
        ],
    ) {
        // The SIMD backend directly: every pair of a randomized ragged
        // batch must come back with the exact scalar score and a CIGAR
        // that replays to it — full lane groups, leftovers, and band
        // overflows (random pairs with skewed lengths push paths far
        // off the corridor) all included, for every kind the striped
        // kernel advertises.
        let pairs = random_batch(&lens, seed ^ 0x51d);
        let spec = SchemeSpec {
            kind,
            match_score: 2,
            mismatch: -1,
            gap: if affine_gaps {
                GapSpec::Affine { open: -2, extend: -1 }
            } else {
                GapSpec::Linear { gap: -1 }
            },
        };
        let engine = anyseq_engine::SimdEngine::avx2();
        let view = BatchView::from_pairs(&pairs);
        let alns = engine.align_batch(&spec, view.refs(), threads).unwrap();
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_replays(&spec, q, s, &alns[k], &format!("simd {kind:?} lane pair {k}"));
        }
    }

    #[test]
    fn nonglobal_scores_are_bit_identical_on_every_backend(
        lens in prop::collection::vec((1usize..200, 1usize..200), 1..24),
        seed in 0u64..1000,
        threads in 1usize..4,
        kind in prop_oneof![Just(KindSpec::SemiGlobal), Just(KindSpec::Local)],
        affine_gaps in prop_oneof![Just(false), Just(true)],
    ) {
        // SemiGlobal and Local are first-class on the SIMD path now:
        // Auto and every Fixed backend must reproduce the scalar
        // optimum bit-for-bit (GpuSim via its scalar fallback).
        let pairs = random_batch(&lens, seed ^ 0x5e71);
        let spec = SchemeSpec {
            kind,
            match_score: 2,
            mismatch: -1,
            gap: if affine_gaps {
                GapSpec::Affine { open: -2, extend: -1 }
            } else {
                GapSpec::Linear { gap: -1 }
            },
        };
        let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
        let sched = scheduler_for(threads, 16);
        for policy in [
            Policy::Auto,
            Policy::Fixed(BackendId::Scalar),
            Policy::Fixed(BackendId::Simd),
            Policy::Fixed(BackendId::Wavefront),
            Policy::Fixed(BackendId::GpuSim),
        ] {
            let dispatch = Dispatch::standard(policy);
            let run = sched.score_pairs(&dispatch, &spec, &pairs);
            prop_assert_eq!(&run.results, &expected, "{:?} policy {:?}", kind, policy);
            if policy == Policy::Fixed(BackendId::Simd) {
                prop_assert_eq!(
                    run.stats.fallbacks, 0,
                    "SIMD runs {:?} natively now", kind
                );
            }
        }
    }

    #[test]
    fn gpu_sim_fallback_path_stays_oracle_identical(
        lens in prop::collection::vec((1usize..180, 1usize..180), 1..20),
        seed in 0u64..1000,
        kind in prop_oneof![
            Just(KindSpec::Local),
            Just(KindSpec::SemiGlobal),
            Just(KindSpec::FreeEnd),
        ],
    ) {
        // The GPU simulator's device queue only implements the
        // corner-optimum kind: every non-global unit must fall back to
        // scalar, results unchanged.
        let pairs = random_batch(&lens, seed ^ 0xfa11);
        let spec = SchemeSpec {
            kind,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Linear { gap: -1 },
        };
        let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
        let sched = scheduler_for(2, 16);
        let dispatch = Dispatch::standard(Policy::Fixed(BackendId::GpuSim));
        let run = sched.score_pairs(&dispatch, &spec, &pairs);
        prop_assert_eq!(&run.results, &expected);
        prop_assert!(run.stats.fallbacks > 0, "expected fallbacks for gpu-sim");
        prop_assert!(
            run.stats.per_backend.iter().all(|b| b.backend == "scalar"),
            "only scalar should have run"
        );
    }

    #[test]
    fn simd_fallback_path_stays_oracle_identical(
        lens in prop::collection::vec((1usize..180, 1usize..180), 1..20),
        seed in 0u64..1000,
    ) {
        // FreeEnd is the one kind the striped kernel still refuses
        // (Local and SemiGlobal run natively since the kind-generic
        // kernels landed): every unit must fall back to scalar,
        // results unchanged.
        let pairs = random_batch(&lens, seed ^ 0xfa12);
        let spec = SchemeSpec {
            kind: KindSpec::FreeEnd,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Linear { gap: -1 },
        };
        let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
        let sched = scheduler_for(2, 16);
        let dispatch = Dispatch::standard(Policy::Fixed(BackendId::Simd));
        let run = sched.score_pairs(&dispatch, &spec, &pairs);
        prop_assert_eq!(&run.results, &expected);
        prop_assert!(run.stats.fallbacks > 0, "expected fallbacks for simd");
        prop_assert!(
            run.stats.per_backend.iter().all(|b| b.backend == "scalar"),
            "only scalar should have run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batch_view_runs_are_bit_identical_to_owned_pair_shims(
        lens in prop::collection::vec((1usize..200, 1usize..200), 1..24),
        seed in 0u64..1000,
        threads in 1usize..4,
        affine_gaps in prop_oneof![Just(false), Just(true)],
    ) {
        // The zero-copy request model must be a pure refactor: a
        // BatchView over owned pairs, a SeqStore-arena view, and the
        // owned-pair shim must produce identical scores and alignments
        // on every backend.
        let pairs = random_batch(&lens, seed ^ 0x71e0);
        let spec = if affine_gaps {
            SchemeSpec::global_affine(2, -1, -2, -1)
        } else {
            SchemeSpec::global_linear(2, -1, -1)
        };
        let mut store = anyseq_seq::SeqStore::new();
        let ids: Vec<_> = pairs
            .iter()
            .map(|(q, s)| (store.push(q).unwrap(), store.push(s).unwrap()))
            .collect();
        let store_view = store.view(&ids);
        let view = BatchView::from_pairs(&pairs);
        let sched = scheduler_for(threads, 16);
        for policy in [
            Policy::Auto,
            Policy::Fixed(BackendId::Scalar),
            Policy::Fixed(BackendId::Simd),
            Policy::Fixed(BackendId::Wavefront),
            Policy::Fixed(BackendId::GpuSim),
        ] {
            let dispatch = Dispatch::standard(policy);
            let via_view = sched.score_batch(&dispatch, &spec, &view);
            let via_store = sched.score_batch(&dispatch, &spec, &store_view);
            let via_shim = sched.score_pairs(&dispatch, &spec, &pairs);
            prop_assert_eq!(&via_view.results, &via_shim.results, "score policy {:?}", policy);
            prop_assert_eq!(&via_view.results, &via_store.results, "store policy {:?}", policy);

            let aln_view = sched.align_batch(&dispatch, &spec, &view);
            let aln_shim = sched.align_pairs(&dispatch, &spec, &pairs);
            prop_assert_eq!(aln_view.results.len(), aln_shim.results.len());
            for (k, (a, b)) in aln_view.results.iter().zip(&aln_shim.results).enumerate() {
                prop_assert_eq!(a.score, b.score, "align policy {:?} pair {}", policy, k);
                prop_assert_eq!(&a.ops, &b.ops, "align policy {:?} pair {}", policy, k);
            }
        }
    }

    #[test]
    fn cached_runs_are_bit_identical_to_uncached(
        lens in prop::collection::vec((1usize..160, 1usize..160), 1..14),
        seed in 0u64..1000,
        threads in 1usize..4,
        affine_gaps in prop_oneof![Just(false), Just(true)],
    ) {
        // The result cache must be invisible in the outputs: for a
        // batch with injected duplicates, a cache-enabled scheduler
        // (cold *and* warm) produces exactly the scores and CIGARs of
        // a cache-off run, on every backend and policy, and the hit /
        // miss counters always partition the batch.
        use anyseq_engine::cache::{CACHE_HITS, CACHE_MISSES};
        let mut pairs = random_batch(&lens, seed ^ 0xcac4e);
        // Duplicate roughly half the batch so both the in-batch dedup
        // (cold) and the cross-batch reuse (warm) paths are exercised.
        let dups: Vec<_> = pairs.iter().step_by(2).cloned().collect();
        pairs.extend(dups);
        let spec = if affine_gaps {
            SchemeSpec::global_affine(2, -1, -2, -1)
        } else {
            SchemeSpec::global_linear(2, -1, -1)
        };
        let sched = scheduler_for(threads, 16);
        for policy in [
            Policy::Auto,
            Policy::Fixed(BackendId::Scalar),
            Policy::Fixed(BackendId::Simd),
            Policy::Fixed(BackendId::Wavefront),
            Policy::Fixed(BackendId::GpuSim),
        ] {
            let plain = Dispatch::standard(policy);
            let cached = anyseq_engine::DispatchPolicy::new(policy)
                .cache_mb(8)
                .standard();

            let base = sched.score_pairs(&plain, &spec, &pairs);
            let cold = sched.score_pairs(&cached, &spec, &pairs);
            let warm = sched.score_pairs(&cached, &spec, &pairs);
            prop_assert_eq!(&cold.results, &base.results, "cold scores {:?}", policy);
            prop_assert_eq!(&warm.results, &base.results, "warm scores {:?}", policy);
            for run in [&cold, &warm] {
                prop_assert_eq!(
                    run.stats.counters[CACHE_HITS] + run.stats.counters[CACHE_MISSES],
                    run.stats.pairs,
                    "hits + misses must partition the batch ({:?})", policy
                );
            }
            prop_assert_eq!(
                warm.stats.counters[CACHE_HITS], warm.stats.pairs,
                "second identical batch is fully warm ({:?})", policy
            );

            let aln_base = sched.align_pairs(&plain, &spec, &pairs);
            let aln_cold = sched.align_pairs(&cached, &spec, &pairs);
            let aln_warm = sched.align_pairs(&cached, &spec, &pairs);
            for (k, base) in aln_base.results.iter().enumerate() {
                prop_assert_eq!(
                    base.score, aln_cold.results[k].score,
                    "cold align score {:?} pair {}", policy, k
                );
                prop_assert_eq!(
                    &base.ops, &aln_cold.results[k].ops,
                    "cold CIGAR {:?} pair {}", policy, k
                );
                prop_assert_eq!(
                    &base.ops, &aln_warm.results[k].ops,
                    "warm CIGAR {:?} pair {}", policy, k
                );
            }
        }
    }

    #[test]
    fn scalar_and_wavefront_units_copy_zero_bytes(
        lens in prop::collection::vec((1usize..180, 1usize..180), 1..16),
        seed in 0u64..1000,
        align in prop_oneof![Just(false), Just(true)],
    ) {
        // The zero-copy acceptance bar: on backends that consume
        // PairRefs directly (no lane transpose), the whole pipeline
        // reports zero copied sequence bytes — the scheduler gather
        // counter is present-and-zero and no backend copy counter
        // appears.
        let pairs = random_batch(&lens, seed ^ 0x0c0b);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let sched = scheduler_for(2, 16);
        for backend in [BackendId::Scalar, BackendId::Wavefront] {
            let dispatch = Dispatch::standard(Policy::Fixed(backend));
            let stats = if align {
                sched.align_batch(&dispatch, &spec, &view).stats
            } else {
                sched.score_batch(&dispatch, &spec, &view).stats
            };
            prop_assert_eq!(
                stats.bytes_copied(),
                0,
                "{:?} copied bytes: {:?}",
                backend,
                stats.counters
            );
            prop_assert_eq!(
                stats.counters.get("sched.bytes_copied").copied(),
                Some(0),
                "gather counter must be present for {:?}", backend
            );
        }
    }

    #[test]
    fn sharded_runs_are_bit_identical_to_unsharded(
        len in 1200usize..2000,
        div in prop_oneof![Just(0.03), Just(0.12)],
        seed in 0u64..1000,
        shards in 1u64..8,
        affine_gaps in prop_oneof![Just(false), Just(true)],
        semi in prop_oneof![Just(false), Just(true)],
    ) {
        // The sharded exclusive pipeline is a pure memory refactor:
        // cutting a pair into subject slabs stitched through
        // serialized border seams must leave scores AND CIGARs
        // bit-identical to the unsharded run, across gap models and
        // alignment kinds, for any shard count.
        let (q, s) = genome_pair(len, div, seed ^ 0x54a2d);
        let cells = (q.len() as u64) * (s.len() as u64);
        let shard_cells = (cells / shards).max(1);
        let kind = if semi { KindSpec::SemiGlobal } else { KindSpec::Global };
        let spec = if affine_gaps {
            SchemeSpec::global_affine(2, -1, -2, -1).with_kind(kind)
        } else {
            SchemeSpec::global_linear(2, -1, -1).with_kind(kind)
        };
        let pairs = vec![(q, s)];
        let sched = scheduler_for(4, 16);
        let plain = Dispatch::standard(Policy::Fixed(BackendId::Wavefront));
        let sharded = anyseq_engine::DispatchPolicy::fixed(BackendId::Wavefront)
            .shard_cells(shard_cells)
            .standard();

        let base = sched.score_pairs(&plain, &spec, &pairs);
        let cut = sched.score_pairs(&sharded, &spec, &pairs);
        prop_assert_eq!(&cut.results, &base.results, "scores shards={}", shards);
        if shards >= 2 {
            // The budget genuinely bites (even after the one-tile
            // clamp), so the score run must go through the seam chain.
            prop_assert!(
                cut.stats.counters.get(anyseq_engine::SCHED_SHARDS).copied().unwrap_or(0) >= 2,
                "shards={} counters={:?}", shards, cut.stats.counters
            );
            prop_assert!(
                cut.stats.counters.get(anyseq_engine::SCHED_SEAM_BYTES).copied().unwrap_or(0) > 0,
                "shards={} counters={:?}", shards, cut.stats.counters
            );
        }

        let aln_base = sched.align_pairs(&plain, &spec, &pairs);
        let aln_cut = sched.align_pairs(&sharded, &spec, &pairs);
        prop_assert_eq!(
            aln_cut.results[0].score, aln_base.results[0].score,
            "align score shards={}", shards
        );
        prop_assert_eq!(
            &aln_cut.results[0].ops, &aln_base.results[0].ops,
            "CIGAR shards={}", shards
        );
    }
}

#[test]
fn engine_contract_accepts_raw_pair_refs() {
    // PairRef is just a pair of code slices: backends must accept refs
    // built from arbitrary storage, not only BatchView helpers.
    let (q, s) = genome_pair(500, 0.05, 77);
    let refs = [PairRef::new(q.codes(), s.codes())];
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let expected = spec.score_scalar(&q, &s);
    for engine in [
        Box::new(anyseq_engine::ScalarEngine) as Box<dyn Engine>,
        Box::new(anyseq_engine::SimdEngine::avx2()),
        Box::new(anyseq_engine::WavefrontEngine::default()),
        Box::new(anyseq_engine::GpuSimEngine::titan_v()),
    ] {
        let got = engine.score_batch(&spec, &refs, 2).unwrap();
        assert_eq!(got, vec![expected], "{}", engine.caps().name);
    }
}

#[test]
fn batch_scheduler_mixes_pooled_and_exclusive_phases() {
    // Small reads (pooled SIMD units) plus pairs past the wavefront
    // threshold (exclusive units) in one batch: both phases must fill
    // their slots, in input order.
    let mut pairs = random_batch(&[(150, 150); 40], 5);
    let mut sim = GenomeSim::new(77);
    let big_a = sim.generate(2200);
    let big_b = sim.mutate(&big_a, 0.06);
    pairs.insert(7, (big_a.clone(), big_b.clone()));
    pairs.push((big_b, big_a));

    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    let run = scheduler_for(3, 32).score_pairs(&dispatch, &spec, &pairs);
    for (k, (q, s)) in pairs.iter().enumerate() {
        assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
    }
    let names: Vec<&str> = run.stats.per_backend.iter().map(|b| b.backend).collect();
    assert!(names.contains(&"simd"), "pooled SIMD phase ran: {names:?}");
    assert!(
        names.contains(&"wavefront"),
        "exclusive wavefront phase ran: {names:?}"
    );
}

#[test]
fn auto_alignment_batches_stay_on_the_simd_path() {
    // The acceptance bar for the lane-packed traceback: a short-read
    // alignment batch under `Policy::Auto` runs on the SIMD backend
    // without any dispatch-level fallback, and the band telemetry
    // confirms the lanes (not the in-backend scalar rescue) did the
    // work.
    let reference = GenomeSim::new(41).generate(150_000);
    let mut rs = ReadSim::new(ReadSimProfile::default(), 43);
    let pairs: Vec<(Seq, Seq)> = rs
        .simulate_pairs(&reference, 300)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect();
    let spec = SchemeSpec::global_affine(2, -1, -2, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    let run = scheduler_for(4, 64).align_pairs(&dispatch, &spec, &pairs);

    for (k, (q, s)) in pairs.iter().enumerate() {
        assert_replays(
            &spec,
            q,
            s,
            &run.results[k],
            &format!("auto align pair {k}"),
        );
    }
    assert_eq!(run.stats.fallbacks, 0, "no unit left the SIMD path");
    let simd = run
        .stats
        .per_backend
        .iter()
        .find(|b| b.backend == "simd")
        .expect("SIMD backend must have executed the batch");
    assert_eq!(simd.pairs, pairs.len() as u64);
    let lane_pairs = run
        .stats
        .counters
        .get("simd.lane_pairs")
        .copied()
        .unwrap_or(0);
    assert!(
        lane_pairs > 0,
        "lane traceback must carry the bulk: {:?}",
        run.stats.counters
    );
    assert_eq!(
        run.stats
            .counters
            .get("simd.band_overflows")
            .copied()
            .unwrap_or(0),
        0,
        "Illumina-profile reads fit the default band"
    );
}

#[test]
fn auto_nonglobal_batches_stay_on_the_simd_path() {
    // The acceptance bar for the kind-generic kernels: short
    // SemiGlobal and Local bins under `Policy::Auto` route to the
    // SIMD backend for both score and align — no dispatch-level
    // fallback, no kind-capability refusal, lanes carrying the bulk.
    let reference = GenomeSim::new(47).generate(120_000);
    let mut rs = ReadSim::new(ReadSimProfile::default(), 48);
    let pairs: Vec<(Seq, Seq)> = rs
        .simulate_pairs(&reference, 240)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect();
    let dispatch = Dispatch::standard(Policy::Auto);
    let sched = scheduler_for(4, 64);
    for kind in [KindSpec::SemiGlobal, KindSpec::Local] {
        let spec = SchemeSpec {
            kind,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Affine {
                open: -2,
                extend: -1,
            },
        };
        let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();

        let scored = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(scored.results, expected, "{kind:?} scores");
        assert_eq!(scored.stats.fallbacks, 0, "{kind:?} score fallbacks");
        assert!(
            !scored
                .stats
                .counters
                .contains_key(anyseq_engine::FALLBACK_KIND_UNSUPPORTED),
            "{kind:?}: no kind-capability refusal under Auto"
        );

        let run = sched.align_pairs(&dispatch, &spec, &pairs);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_replays(
                &spec,
                q,
                s,
                &run.results[k],
                &format!("auto {kind:?} align pair {k}"),
            );
        }
        assert_eq!(run.stats.fallbacks, 0, "{kind:?} align fallbacks");
        let simd = run
            .stats
            .per_backend
            .iter()
            .find(|b| b.backend == "simd")
            .unwrap_or_else(|| panic!("{kind:?}: SIMD backend must have executed the batch"));
        assert_eq!(simd.pairs, pairs.len() as u64);
        let lane_pairs = run
            .stats
            .counters
            .get("simd.lane_pairs")
            .copied()
            .unwrap_or(0);
        assert!(
            lane_pairs > 0,
            "{kind:?}: lane traceback must carry the bulk: {:?}",
            run.stats.counters
        );
    }
}

#[test]
fn batch_scheduler_stats_account_all_cells() {
    let pairs = random_batch(&[(100, 120), (64, 64), (150, 150), (1, 1)], 9);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    let run = scheduler_for(2, 2).score_pairs(&dispatch, &spec, &pairs);
    let expected_cells: u64 = pairs.iter().map(|(q, s)| (q.len() * s.len()) as u64).sum();
    assert_eq!(run.stats.cells, expected_cells);
    let backend_cells: u64 = run.stats.per_backend.iter().map(|b| b.cells).sum();
    assert_eq!(
        backend_cells, expected_cells,
        "every cell attributed to a backend"
    );
    assert!(run.stats.gcups() > 0.0);
}

#[test]
fn fasta_round_trip_through_alignment() {
    use anyseq::seq::fasta;
    let text = b">query first\nACGTACGTTGACCA\n>subject second\nACGTACGTTGCCAA\n";
    let records = fasta::read_fasta(&text[..]).unwrap();
    assert_eq!(records.len(), 2);
    let scheme = global(linear(simple(2, -1), -1));
    let aln = scheme.align(&records[0].seq, &records[1].seq);
    aln.validate::<Global, _, _>(
        &records[0].seq,
        &records[1].seq,
        scheme.gap(),
        scheme.subst(),
    )
    .unwrap();
}
