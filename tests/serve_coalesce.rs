//! The serving layer's central correctness property: **coalescing is
//! invisible**. However the deadline micro-batching window happens to
//! group concurrent clients' requests into engine batches, every
//! client must get bit-identical results to dispatching its requests
//! alone, sequentially — and must get them back in its own submission
//! order.
//!
//! The daemon runs on a [`FakeClock`], and a pump thread walks fake
//! time forward while clients are in flight, so window deadlines fire
//! at arbitrary points relative to the submission interleaving: each
//! proptest case explores a different batch composition, and the
//! assertion is that composition never shows through.
//!
//! CIGAR bit-identity is asserted under `Policy::Fixed(Scalar)` — the
//! scalar backend's traceback is per-pair deterministic, while the
//! SIMD banded traceback may legally shape CIGARs by lane-group
//! composition (shared band width). Scores are additionally asserted
//! under full `Policy::Auto` in a separate test: the engine contract
//! makes scores bit-exact across backends, so score identity must
//! survive any backend mix the coalesced batch is routed to.

use anyseq::serve::proto::Results;
use anyseq::serve::{
    FakeClock, ReqKind, SchemeSpec, ServeClient, ServeConfig, Server, ServerReply, WindowCfg,
};
use anyseq_engine::{BackendId, BatchCfg, BatchScheduler, Dispatch, DispatchPolicy, Policy};
use anyseq_seq::testsupport::read_pairs;
use anyseq_seq::{BatchView, PairRef};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique socket path per daemon (pid + counter: parallel test
/// binaries and parallel cases within one binary cannot collide).
fn socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "anyseq-{tag}-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Walks the fake clock forward until `stop` is raised, so window
/// deadlines fire at arbitrary real-time points while clients run.
fn pump_clock(clock: Arc<FakeClock>, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            clock.advance(2_000_000); // 2 ms fake per tick
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    })
}

/// One client's scripted traffic: `(align?, spec, pairs)` per request.
type ClientScript = Vec<(bool, SchemeSpec, Vec<(Vec<u8>, Vec<u8>)>)>;

/// Runs every script against a fake-clock daemon (one connection per
/// script, all requests pipelined before any reply is read), asserts
/// per-connection submission-order replies, and returns each client's
/// results in submission order.
fn run_through_daemon(
    scripts: &[ClientScript],
    policy: DispatchPolicy,
    target_pairs: usize,
) -> Vec<Vec<Results>> {
    let clock = Arc::new(FakeClock::new());
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 1_000_000,
            target_pairs,
            ..WindowCfg::default()
        },
        threads: 1,
        policy,
        ..ServeConfig::default()
    };
    let server = Server::start(socket_path("coalesce"), cfg, clock.clone() as Arc<_>)
        .expect("daemon start failed");

    let stop = Arc::new(AtomicBool::new(false));
    let pump = pump_clock(clock, stop.clone());

    let handles: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|script| {
            let sock = server.path().to_path_buf();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&sock).expect("connect failed");
                let ids: Vec<u64> = script
                    .iter()
                    .map(|(align, spec, pairs)| {
                        let mode = if *align {
                            ReqKind::Align
                        } else {
                            ReqKind::Score
                        };
                        client
                            .submit(mode, *spec, pairs.clone())
                            .expect("submit failed")
                    })
                    .collect();
                ids.into_iter()
                    .map(|id| match client.recv().expect("recv failed") {
                        ServerReply::Response { id: got, results } => {
                            // The FIFO reply contract: each reply is for
                            // the oldest outstanding request.
                            assert_eq!(got, id, "reply out of submission order");
                            results
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    })
                    .collect::<Vec<Results>>()
            })
        })
        .collect();
    let results = handles
        .into_iter()
        .map(|h| h.join().expect("client panicked"))
        .collect();

    stop.store(true, Ordering::Relaxed);
    pump.join().expect("clock pump panicked");
    server.shutdown();
    results
}

/// The sequential baseline: each request dispatched on its own, in
/// submission order, through the same policy — no coalescing at all.
fn run_sequentially(scripts: &[ClientScript], policy: DispatchPolicy) -> Vec<Vec<Results>> {
    let dispatch = policy.standard();
    let scheduler = BatchScheduler::new(BatchCfg::threads(1));
    scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|(align, spec, pairs)| {
                    let refs: Vec<PairRef<'_>> =
                        pairs.iter().map(|(q, s)| PairRef::new(q, s)).collect();
                    let view = BatchView::from_refs(refs);
                    if *align {
                        Results::Alignments(scheduler.align_batch(&dispatch, spec, &view).results)
                    } else {
                        Results::Scores(scheduler.score_batch(&dispatch, spec, &view).results)
                    }
                })
                .collect()
        })
        .collect()
}

fn seq_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..5, 1..40) // includes N (code 4)
}

/// A request before interpretation: `(align?, (mismatch, gap), pairs)`
/// — the shim has no `prop_map`, so [`to_scripts`] builds the
/// [`SchemeSpec`]s in the test body.
type RawRequest = (u8, (i32, i32), Vec<(Vec<u8>, Vec<u8>)>);

fn request_strategy() -> impl Strategy<Value = RawRequest> {
    (
        0u8..2,
        (-3i32..=-1, -3i32..=-1),
        prop::collection::vec((seq_strategy(), seq_strategy()), 1..4),
    )
}

fn to_scripts(raw: Vec<Vec<RawRequest>>) -> Vec<ClientScript> {
    raw.into_iter()
        .map(|client| {
            client
                .into_iter()
                .map(|(align, (mismatch, gap), pairs)| {
                    (
                        align == 1,
                        SchemeSpec::global_linear(2, mismatch, gap),
                        pairs,
                    )
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random multi-client interleavings: scores AND CIGARs from
    /// the coalescing daemon are bit-identical to the sequential
    /// baseline, per client, in submission order.
    #[test]
    fn coalesced_results_are_bit_identical_to_sequential_dispatch(
        raw in prop::collection::vec(prop::collection::vec(request_strategy(), 1..4), 2..5),
        target_pairs in prop_oneof![Just(1usize), Just(4), Just(1000)],
    ) {
        let scripts = to_scripts(raw);
        let policy = DispatchPolicy::fixed(BackendId::Scalar);
        let got = run_through_daemon(&scripts, policy, target_pairs);
        let expected = run_sequentially(&scripts, policy);
        prop_assert_eq!(got, expected);
    }
}

/// Score bit-identity under the full auto registry: whatever backend
/// mix the coalesced batches are routed to, scores match a sequential
/// auto-dispatch baseline bit-exactly (the engine's cross-backend
/// score contract, observed through the serving layer).
#[test]
fn auto_dispatch_scores_survive_coalescing() {
    let pairs = read_pairs(48, 0xC0A1);
    let scripts: Vec<ClientScript> = (0..3)
        .map(|c| {
            pairs[c * 16..(c + 1) * 16]
                .chunks(4)
                .map(|chunk| {
                    let wire = chunk
                        .iter()
                        .map(|(q, s)| (q.codes().to_vec(), s.codes().to_vec()))
                        .collect();
                    (false, SchemeSpec::global_linear(2, -1, -1), wire)
                })
                .collect()
        })
        .collect();
    let policy = DispatchPolicy::auto();
    let got = run_through_daemon(&scripts, policy, 1000);
    let expected = run_sequentially(&scripts, policy);
    assert_eq!(got, expected);

    // Belt and braces: the same scores through a plain single-batch
    // auto dispatch (no serving layer at all).
    let dispatch = Dispatch::standard(Policy::Auto);
    let scheduler = BatchScheduler::new(BatchCfg::threads(1));
    for (script, client_results) in scripts.iter().zip(&got) {
        for ((_, spec, wire), results) in script.iter().zip(client_results) {
            let refs: Vec<PairRef<'_>> = wire.iter().map(|(q, s)| PairRef::new(q, s)).collect();
            let plain = scheduler
                .score_batch(&dispatch, spec, &BatchView::from_refs(refs))
                .results;
            assert_eq!(results, &Results::Scores(plain));
        }
    }
}
