//! Request-scoped observability under a [`FakeClock`]: the stage
//! decomposition must *account for* the latency a client observes, and
//! the slow-request log must contain exactly the over-threshold
//! requests.
//!
//! The daemon's every request-lifecycle stamp reads the injected
//! clock, so fake time only moves when the test advances it — each
//! test walks a request through a known stage before advancing, which
//! pins every stamp to a chosen fake instant and makes the
//! decomposition arithmetic exact rather than approximate.

use anyseq::serve::{
    Clock, FakeClock, ReqKind, RequestRecord, SchemeSpec, ServeClient, ServeConfig, Server,
    ServerHandle, ServerReply, WindowCfg,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MS: u64 = 1_000_000;

/// A unique socket path per daemon (pid + counter: parallel test
/// binaries and parallel cases within one binary cannot collide).
fn socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "anyseq-{tag}-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Starts a fake-clock daemon with the given window deadline and slow
/// threshold; `target_pairs` stays huge unless a test wants the count
/// trigger.
fn start_daemon(
    tag: &str,
    clock: &Arc<FakeClock>,
    max_delay_ns: u64,
    target_pairs: usize,
    slow_ms: u64,
) -> ServerHandle {
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns,
            target_pairs,
            ..WindowCfg::default()
        },
        threads: 1,
        slow_ms,
        ..ServeConfig::default()
    };
    Server::start(socket_path(tag), cfg, clock.clone() as Arc<_>).expect("daemon start failed")
}

/// Polls `cond` (real time) until it holds; the daemon's threads run
/// in real time even though their clock is fake, so "the reader has
/// admitted the frame" style facts need a poll, not a sleep.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = std::time::Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

fn submit_score(client: &mut ServeClient, pairs: usize) -> u64 {
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let pairs = (0..pairs)
        .map(|k| (vec![0, 1, 2, (k % 4) as u8], vec![0, 1, 3, 3]))
        .collect();
    client
        .submit(ReqKind::Score, spec, pairs)
        .expect("submit failed")
}

fn recv_scores(client: &mut ServeClient) {
    match client.recv().expect("recv failed") {
        ServerReply::Response { .. } => {}
        other => panic!("unexpected reply: {other:?}"),
    }
}

/// `window_wait + queue_wait + dispatch` must equal the fake-time
/// latency the client observes, to within one clock tick (the stamps
/// all read the same fake clock, and the only uncounted interval —
/// dispatch end to reply start — cannot tick unless the test does).
#[test]
fn stage_decomposition_accounts_for_client_observed_latency() {
    let clock = Arc::new(FakeClock::new());
    let server = start_daemon("obs-decomp", &clock, 3 * MS, usize::MAX, 100);
    let mut client = ServeClient::connect(server.path()).expect("connect failed");

    let t_submit = clock.now_ns();
    submit_score(&mut client, 2);
    // The frame is admitted (recv/admit stamped at the current fake
    // instant) once its bytes are accounted against the queue budget.
    wait_until("request admitted", || server.queued_bytes() > 0);
    // Only now does fake time move: the whole 3 ms lands in the window
    // wait, and the deadline flush dispatches the batch.
    clock.advance(3 * MS);
    recv_scores(&mut client);
    let observed = clock.now_ns() - t_submit;

    let recs = {
        let mut recs = Vec::new();
        wait_until("record in flight recorder", || {
            recs = server.flight_requests();
            !recs.is_empty()
        });
        recs
    };
    let rec: &RequestRecord = &recs[0];
    assert_eq!(rec.pairs, 2);
    assert_eq!(rec.verb, "score");
    assert_eq!(rec.kind, "global");
    assert!(rec.batch_seq >= 1, "batch_seq not stamped: {rec:?}");

    let staged = rec.window_wait_ns() + rec.queue_wait_ns() + rec.dispatch_ns();
    assert_eq!(observed, 3 * MS);
    assert!(
        staged.abs_diff(observed) <= MS,
        "stage sum {staged} vs client-observed {observed} (rec {rec:?})"
    );
    assert!(
        staged as f64 >= 0.95 * observed as f64,
        "stage sum {staged} explains < 95% of client-observed {observed}"
    );
    assert_eq!(rec.total_ns(), observed, "record total vs fake wall time");
    server.shutdown();
}

/// Exactly the over-threshold requests appear in the slow log: a 1 ms
/// request stays out, a 3 ms request lands in, and the counter ends at
/// one.
#[test]
fn slow_log_contains_exactly_the_over_threshold_requests() {
    let clock = Arc::new(FakeClock::new());
    // Deadline 3 ms, count trigger at 4 pairs, slow threshold 2 ms.
    let server = start_daemon("obs-slowlog", &clock, 3 * MS, 4, 2);
    let mut client = ServeClient::connect(server.path()).expect("connect failed");

    // Request A (1 pair) waits 1 ms, then request B's 3 pairs fill the
    // window to its count target: both flush at the same fake instant,
    // so A totals 1 ms and B totals 0 — neither crosses 2 ms.
    submit_score(&mut client, 1);
    wait_until("A admitted", || server.queued_bytes() > 0);
    clock.advance(MS);
    submit_score(&mut client, 3);
    recv_scores(&mut client);
    recv_scores(&mut client);
    wait_until("A and B recorded", || server.flight_requests().len() == 2);
    assert_eq!(server.slow_log().len(), 0, "under-threshold request logged");

    // Request C rides the window to its 3 ms deadline: over threshold.
    submit_score(&mut client, 1);
    wait_until("C admitted", || server.queued_bytes() > 0);
    clock.advance(3 * MS);
    recv_scores(&mut client);
    wait_until("C recorded", || server.flight_requests().len() == 3);

    let slow = server.slow_log();
    assert_eq!(slow.len(), 1, "slow log: {slow:?}");
    assert_eq!(slow[0].total_ns(), 3 * MS);
    assert_eq!(slow[0].pairs, 1);
    let stats = server.stats_text();
    assert!(
        stats.contains("anyseq_serve_slow_total 1"),
        "slow counter line missing:\n{stats}"
    );
    server.shutdown();
}

/// A cold daemon (zero traffic) already exposes every serve family the
/// dashboards key on — and answers `HEALTH` / `DUMP` over the wire.
#[test]
fn cold_scrape_has_stable_keys_and_health_dump_verbs_answer() {
    let clock = Arc::new(FakeClock::new());
    let server = start_daemon("obs-cold", &clock, 2 * MS, usize::MAX, 100);

    let stats = server.stats_text();
    for family in [
        "anyseq_serve_requests_total",
        "anyseq_serve_rejected_total",
        "anyseq_serve_malformed_total",
        "anyseq_serve_batches_total",
        "anyseq_serve_batch_pairs_total",
        "anyseq_serve_batch_pairs_count",
        "anyseq_serve_slow_total",
        "anyseq_serve_request_us_count{kind=\"-\",scheme=\"-\",verb=\"align\"}",
        "anyseq_serve_request_us_count{kind=\"-\",scheme=\"-\",verb=\"score\"}",
        "anyseq_serve_req_p50_us{verb=\"score\"}",
        "anyseq_serve_req_p95_us{verb=\"score\"}",
        "anyseq_serve_req_p99_us{verb=\"align\"}",
        "anyseq_serve_window_occupancy",
        "anyseq_serve_queue_bytes",
        "anyseq_serve_queue_depth",
    ] {
        assert!(
            stats.contains(family),
            "cold scrape missing {family}:\n{stats}"
        );
    }

    let mut client = ServeClient::connect(server.path()).expect("connect failed");
    let health = client.health().expect("health probe failed");
    assert!(
        health.starts_with('{') && health.contains("\"slowlog\":[]"),
        "unexpected health document: {health}"
    );
    let dump = client.dump_flight().expect("flight dump failed");
    assert!(dump.trim_start().starts_with('['), "not a trace: {dump}");
    server.shutdown();
}

/// `request_obs: false` is a true off switch: no records, no slow log,
/// and the health document says so — while requests still answer.
#[test]
fn request_obs_off_disables_tracing_but_not_serving() {
    let clock = Arc::new(FakeClock::new());
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 2 * MS,
            target_pairs: 1,
            ..WindowCfg::default()
        },
        threads: 1,
        request_obs: false,
        slow_ms: 0,
        ..ServeConfig::default()
    };
    let server =
        Server::start(socket_path("obs-off"), cfg, clock.clone() as Arc<_>).expect("start failed");
    let mut client = ServeClient::connect(server.path()).expect("connect failed");
    submit_score(&mut client, 1);
    recv_scores(&mut client);

    assert!(server.flight_requests().is_empty());
    assert!(server.slow_log().is_empty());
    let health = server.health_text();
    assert!(
        health.contains("\"request_obs\":false"),
        "health should report tracing off: {health}"
    );
    assert_eq!(server.flight_trace_text(), "[\n]\n");
    server.shutdown();
}
