//! Fault injection against the serving layer: clients that vanish
//! mid-flight, garbage on the wire, and bursts past the admission
//! budget. The daemon's contracts under fire:
//!
//! * a disconnect never stalls the window, leaks queue bytes, or
//!   poisons another connection's results;
//! * a malformed frame gets a *typed* error reply, not a hangup, and
//!   the connection stays usable;
//! * overload is a synchronous, accounted refusal (`Overloaded`,
//!   counted in `anyseq_serve_rejected_total`) — accepted requests
//!   still complete, the queue gauge is bounded by the budget and
//!   returns to exactly 0 after the storm.

use anyseq::core::score::Score;
use anyseq::serve::proto::Results;
use anyseq::serve::{
    ErrCode, FakeClock, ReqKind, SchemeSpec, ServeClient, ServeConfig, Server, ServerHandle,
    ServerReply, SystemClock, WindowCfg,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "anyseq-{tag}-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Extracts one value from the daemon's Prometheus exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("STATS exposition is missing {name}"))
}

/// Polls until the batcher queue is fully drained (both the live
/// accounting and the exported gauges must reach exactly 0).
fn wait_for_drained_queue(server: &ServerHandle) {
    for _ in 0..500 {
        if server.queued_bytes() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.queued_bytes(), 0, "queue bytes leaked");
    let stats = server.stats_text();
    assert_eq!(
        metric(&stats, "anyseq_serve_queue_bytes"),
        0.0,
        "queue-bytes gauge did not return to 0"
    );
    assert_eq!(
        metric(&stats, "anyseq_serve_queue_depth"),
        0.0,
        "queue-depth gauge did not return to 0"
    );
}

fn spec() -> SchemeSpec {
    SchemeSpec::global_linear(2, -1, -1)
}

/// `n` pairs of `len`-byte sequences: `2 * n * len` queue bytes each.
fn bulk_pairs(n: usize, len: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|k| (vec![(k % 4) as u8; len], vec![0u8; len]))
        .collect()
}

#[test]
fn disconnect_mid_flight_does_not_poison_other_connections() {
    let server = Server::start(
        socket_path("faults-disco"),
        ServeConfig::default(),
        Arc::new(SystemClock::new()),
    )
    .expect("daemon start failed");

    // The vanishing client: submit into the window, then hang up
    // before the reply can be written.
    let mut ghost = ServeClient::connect(server.path()).expect("connect failed");
    ghost
        .submit(ReqKind::Score, spec(), bulk_pairs(8, 64))
        .expect("submit failed");
    drop(ghost);

    // A well-behaved client in (at least potentially) the same window
    // must be unaffected: exact scores, no stall, no error.
    let mut client = ServeClient::connect(server.path()).expect("connect failed");
    let results = client
        .roundtrip(
            ReqKind::Score,
            spec(),
            vec![(vec![0, 1, 2, 3], vec![0, 1, 3, 3])],
        )
        .expect("roundtrip failed")
        .expect("request refused");
    assert_eq!(results, Results::Scores(vec![5]));

    // The ghost's queue bytes were released when its batch was taken,
    // receiver liveness notwithstanding.
    wait_for_drained_queue(&server);
    let stats = server.stats_text();
    assert_eq!(metric(&stats, "anyseq_serve_requests_total"), 2.0);
    assert_eq!(metric(&stats, "anyseq_serve_rejected_total"), 0.0);
    server.shutdown();
}

#[test]
fn malformed_frame_gets_a_typed_error_not_a_hangup() {
    let server = Server::start(
        socket_path("faults-proto"),
        ServeConfig::default(),
        Arc::new(SystemClock::new()),
    )
    .expect("daemon start failed");
    let mut client = ServeClient::connect(server.path()).expect("connect failed");

    // Garbage verb + trailing junk: must come back as a typed
    // `Malformed` error frame on the same connection.
    client.send_raw(&[0xFF, 1, 2, 3]).expect("send failed");
    match client.recv().expect("recv failed") {
        ServerReply::Error(err) => {
            assert_eq!(err.code, ErrCode::Malformed);
            assert!(!err.message.is_empty(), "error frame should say why");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }

    // A truncated-but-valid-verb payload is malformed too.
    client.send_raw(&[0x01, 9]).expect("send failed");
    match client.recv().expect("recv failed") {
        ServerReply::Error(err) => assert_eq!(err.code, ErrCode::Malformed),
        other => panic!("expected a typed error, got {other:?}"),
    }

    // The connection survived both: a well-formed request still works.
    let results = client
        .roundtrip(
            ReqKind::Score,
            spec(),
            vec![(vec![0, 1, 2, 3], vec![0, 1, 3, 3])],
        )
        .expect("roundtrip failed")
        .expect("request refused");
    assert_eq!(results, Results::Scores(vec![5]));

    let stats = client.stats().expect("stats failed");
    assert_eq!(metric(&stats, "anyseq_serve_malformed_total"), 2.0);
    server.shutdown();
}

/// Deterministic backpressure: with the clock frozen nothing can
/// flush, so admission arithmetic is exact — requests 1–2 fit the
/// budget, 3–6 are refused synchronously. Thawing the clock completes
/// the accepted ones; every reply arrives in submission order.
#[test]
fn overload_is_synchronous_accounted_and_recoverable() {
    let clock = Arc::new(FakeClock::new());
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 1_000_000,
            target_pairs: 1 << 20,
            max_batch_bytes: u64::MAX,
            queue_budget_bytes: 2_000,
        },
        threads: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(socket_path("faults-burst"), cfg, clock.clone() as Arc<_>)
        .expect("daemon start failed");
    let mut client = ServeClient::connect(server.path()).expect("connect failed");

    // 6 requests x 800 queue bytes against a 2000-byte budget.
    for _ in 0..6 {
        client
            .submit(ReqKind::Score, spec(), bulk_pairs(4, 100))
            .expect("submit failed");
    }

    // Nothing has flushed yet (fake time is frozen), so the refusals
    // are already decided; thaw the clock to let the accepted two run.
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let (clock, stop) = (clock.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.advance(2_000_000);
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for k in 0..6 {
        match client.recv().expect("recv failed") {
            ServerReply::Response { id, results } => {
                assert_eq!(id, k + 1, "reply out of submission order");
                accepted += 1;
                match results {
                    Results::Scores(v) => assert_eq!(v.len(), 4),
                    other => panic!("score request answered with {other:?}"),
                }
            }
            ServerReply::Error(err) => {
                assert_eq!(err.code, ErrCode::Overloaded);
                assert_eq!(err.id, k + 1, "refusal out of submission order");
                rejected += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!((accepted, rejected), (2, 4));

    // Accounting: the metric equals the observed refusals, and the
    // peak queue level never exceeded the budget.
    let stats = client.stats().expect("stats failed");
    assert_eq!(metric(&stats, "anyseq_serve_rejected_total"), 4.0);
    assert_eq!(metric(&stats, "anyseq_serve_requests_total"), 6.0);
    assert!(server.peak_queued_bytes() <= 2_000);
    assert_eq!(server.peak_queued_bytes(), 1_600);
    wait_for_drained_queue(&server);

    // Recovery: the same connection is admitted again after the storm.
    let results = client
        .roundtrip(ReqKind::Score, spec(), bulk_pairs(2, 50))
        .expect("roundtrip failed")
        .expect("post-storm request refused");
    assert!(matches!(results, Results::Scores(ref v) if v.len() == 2));

    stop.store(true, Ordering::Relaxed);
    pump.join().expect("clock pump panicked");
    server.shutdown();
}

/// The concurrent storm: several clients burst past the budget at
/// once. Rejection *counts* are interleaving-dependent, but the books
/// must balance — client-observed refusals equal the metric, every
/// accepted request completes with exact scores, the peak stays under
/// budget, and the whole thing terminates (no deadlock).
#[test]
fn concurrent_burst_balances_the_books() {
    const CLIENTS: usize = 3;
    const REQS: u64 = 6;
    let clock = Arc::new(FakeClock::new());
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 1_000_000,
            target_pairs: 1 << 20,
            max_batch_bytes: u64::MAX,
            queue_budget_bytes: 2_000,
        },
        threads: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(socket_path("faults-storm"), cfg, clock.clone() as Arc<_>)
        .expect("daemon start failed");

    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let (clock, stop) = (clock.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.advance(2_000_000);
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    // Local baseline for the one workload every client sends.
    let pairs = bulk_pairs(4, 100);
    let expected: Vec<Score> = {
        use anyseq::prelude::*;
        pairs
            .iter()
            .map(|(q, s)| {
                let q = Seq::from_codes(q.clone()).unwrap();
                let s = Seq::from_codes(s.clone()).unwrap();
                global(linear(simple(2, -1), -1)).score(&q, &s)
            })
            .collect()
    };

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let sock = server.path().to_path_buf();
            let pairs = pairs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&sock).expect("connect failed");
                for _ in 0..REQS {
                    client
                        .submit(ReqKind::Score, spec(), pairs.clone())
                        .expect("submit failed");
                }
                let mut rejected = 0u64;
                for _ in 0..REQS {
                    match client.recv().expect("recv failed") {
                        ServerReply::Response { results, .. } => {
                            assert_eq!(results, Results::Scores(expected.clone()));
                        }
                        ServerReply::Error(err) => {
                            assert_eq!(err.code, ErrCode::Overloaded);
                            rejected += 1;
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                rejected
            })
        })
        .collect();
    let client_rejections: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client panicked"))
        .sum();

    let stats = server.stats_text();
    assert_eq!(
        metric(&stats, "anyseq_serve_rejected_total"),
        client_rejections as f64,
        "metric and client-observed refusals disagree"
    );
    assert_eq!(
        metric(&stats, "anyseq_serve_requests_total"),
        (CLIENTS as u64 * REQS) as f64
    );
    assert!(server.peak_queued_bytes() <= 2_000, "budget breached");
    wait_for_drained_queue(&server);

    stop.store(true, Ordering::Relaxed);
    pump.join().expect("clock pump panicked");
    server.shutdown();
}
