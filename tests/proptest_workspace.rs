//! Workspace-wide property tests: randomized schemes and inputs pushed
//! through every backend, with failure-injection-style edge parameters
//! (tiny tiles, lane-tail remainders, thread oversubscription).

use anyseq::fpga::SystolicArray;
use anyseq::gpu::{Device, GpuAligner};
use anyseq::prelude::*;
use anyseq::simd::simd_tiled_score_pass;
use anyseq_core::kind::Global;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use proptest::prelude::*;

fn seq_strategy(lo: usize, hi: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..5, lo..hi) // includes N (code 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_on_random_inputs(
        q in seq_strategy(1, 300),
        s in seq_strategy(1, 300),
        open in -4i32..=0,
        ext in -3i32..0,
        tile in prop_oneof![Just(16usize), Just(33), Just(128)],
        threads in 1usize..5,
    ) {
        let qs = Seq::from_codes(q).unwrap();
        let ss = Seq::from_codes(s).unwrap();
        let scheme = global(affine(simple(2, -1), open, ext));
        let expected = scheme.score(&qs, &ss);

        let cfg = ParallelCfg { threads, tile, min_parallel_area: 0, static_schedule: false, shard_cells: 0 };
        prop_assert_eq!(
            tiled_score_pass::<Global, _, _>(
                scheme.gap(), scheme.subst(), qs.codes(), ss.codes(), open, &cfg).score,
            expected
        );
        prop_assert_eq!(
            simd_tiled_score_pass::<_, _, 8>(
                scheme.gap(), scheme.subst(), qs.codes(), ss.codes(), open, &cfg).score,
            expected
        );
        let gpu = GpuAligner::new(Device::titan_v()).with_tile(tile);
        prop_assert_eq!(gpu.score(&scheme, &qs, &ss).score, expected);
        let fpga = SystolicArray::zcu104(tile.min(64));
        prop_assert_eq!(fpga.score(scheme.gap(), scheme.subst(), &qs, &ss).score, expected);
    }

    #[test]
    fn parallel_alignment_optimal_on_random_inputs(
        q in seq_strategy(1, 250),
        s in seq_strategy(1, 250),
        open in -4i32..=0,
        ext in -3i32..0,
    ) {
        let qs = Seq::from_codes(q).unwrap();
        let ss = Seq::from_codes(s).unwrap();
        let scheme = global(affine(simple(2, -1), open, ext));
        let expected = scheme.score(&qs, &ss);
        let cfg = ParallelCfg { threads: 3, tile: 32, min_parallel_area: 0, static_schedule: false, shard_cells: 0 };
        let aln = scheme.align_parallel(&qs, &ss, &cfg);
        prop_assert_eq!(aln.score, expected);
        if let Err(e) = aln.validate::<Global, _, _>(&qs, &ss, scheme.gap(), scheme.subst()) {
            prop_assert!(false, "invalid alignment: {e}");
        }
    }

    #[test]
    fn batch_engines_handle_ragged_batches(
        lens in prop::collection::vec((1usize..200, 1usize..200), 1..40),
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(Seq, Seq)> = lens
            .iter()
            .map(|&(n, m)| {
                (
                    Seq::from_codes((0..n).map(|_| rng.gen_range(0..4)).collect()).unwrap(),
                    Seq::from_codes((0..m).map(|_| rng.gen_range(0..4)).collect()).unwrap(),
                )
            })
            .collect();
        let scheme = global(linear(simple(2, -1), -1));
        let view = anyseq_seq::BatchView::from_pairs(&pairs);
        let scalar = score_batch_parallel(&scheme, &pairs, 4);
        let simd = anyseq::simd::score_batch_simd::<_, _, _, 8>(&scheme, view.refs(), 4);
        prop_assert_eq!(scalar, simd);
    }
}
