//! Workspace-level observability integration: the span/metrics layer
//! must tell the truth about a batch — counters from engines that
//! *declined* survive the fallback, spans attribute to the engine that
//! *executed*, per-worker lanes never overlap, and both exposition
//! formats (Chrome trace, Prometheus text) are produced from a real
//! run. It must also cost nothing when off: no spans, no stage
//! counters.

use anyseq_engine::engine::ALL_KINDS;
use anyseq_engine::{
    BackendId, BatchCfg, BatchScheduler, Caps, Dispatch, DispatchPolicy, Engine, EngineError,
    Policy, SchemeSpec,
};
use anyseq_obs::{chrome_trace, prometheus_text, Stage};
use anyseq_seq::genome::GenomeSim;
use anyseq_seq::readsim::{ReadSim, ReadSimProfile};
use anyseq_seq::{PairRef, Seq};
use std::sync::atomic::{AtomicU64, Ordering};

/// An engine that claims full support, does some accountable probe
/// work, and then declines every request — the worst-case foreign
/// `Engine` for counter plumbing.
#[derive(Default)]
struct ProbingDecliner {
    probes: AtomicU64,
}

impl Engine for ProbingDecliner {
    fn caps(&self) -> Caps {
        Caps {
            name: "decliner",
            score_kinds: ALL_KINDS,
            align_kinds: ALL_KINDS,
            alphabet: "dna4+n",
            max_native_extent: None,
            batch_native: true,
            max_unit_cells: None,
        }
    }

    fn score_batch(
        &self,
        _spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        _threads: usize,
    ) -> Result<Vec<i32>, EngineError> {
        self.probes.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        Err(EngineError::unsupported("decliner", "always declines"))
    }

    fn align_batch(
        &self,
        _spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        _threads: usize,
    ) -> Result<Vec<anyseq_core::Alignment>, EngineError> {
        self.probes.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        Err(EngineError::unsupported("decliner", "always declines"))
    }

    fn drain_counters(&self) -> Vec<(&'static str, u64)> {
        let v = self.probes.swap(0, Ordering::Relaxed);
        if v > 0 {
            vec![("decliner.probes", v)]
        } else {
            Vec::new()
        }
    }
}

fn read_pairs(n: usize, seed: u64) -> Vec<(Seq, Seq)> {
    let reference = GenomeSim::new(seed).generate(50_000);
    ReadSim::new(ReadSimProfile::default(), seed ^ 0xead)
        .simulate_pairs(&reference, n)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect()
}

#[test]
fn declining_engine_counters_survive_the_fallback() {
    let pairs = read_pairs(60, 1);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = Dispatch::standard(Policy::Fixed(BackendId::Simd))
        .with_engine(BackendId::Simd, Box::new(ProbingDecliner::default()));
    let sched = BatchScheduler::new(BatchCfg::threads(2));
    let run = sched.score_pairs(&dispatch, &spec, &pairs);

    let expected: Vec<i32> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
    assert_eq!(run.results, expected, "fallback must stay bit-exact");
    assert!(run.stats.fallbacks > 0);
    // The probe work done before declining is attributed, not leaked.
    assert_eq!(
        run.stats.counters.get("decliner.probes").copied(),
        Some(pairs.len() as u64),
        "declined engine's counters were lost: {:?}",
        run.stats.counters
    );
    // Each declined unit is counted against the backend slot that
    // declined it.
    let declined = run.stats.counters["dispatch.declined.simd"];
    assert!(declined > 0 && declined == run.stats.fallbacks);
    assert!(
        run.stats.per_backend.iter().all(|b| b.backend == "scalar"),
        "only the scalar rescue may record execution: {:?}",
        run.stats.per_backend
    );
}

#[test]
fn spans_attribute_to_the_engine_that_executed() {
    let pairs = read_pairs(40, 2);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = DispatchPolicy::new(Policy::Fixed(BackendId::Simd))
        .observe(true)
        .standard()
        .with_engine(BackendId::Simd, Box::new(ProbingDecliner::default()));
    let sched = BatchScheduler::new(BatchCfg::threads(2));
    let run = sched.score_pairs(&dispatch, &spec, &pairs);

    let kernels: Vec<_> = run
        .stats
        .spans
        .iter()
        .filter(|sp| sp.stage == Stage::Kernel)
        .collect();
    assert!(!kernels.is_empty(), "observe=true must produce spans");
    for sp in &kernels {
        assert_eq!(
            sp.backend, "scalar",
            "kernel span must carry the executing engine, not the declined pick"
        );
    }
    assert!(
        !run.stats.spans.iter().any(|sp| sp.backend == "decliner"),
        "a declining engine executed nothing, so it owns no spans"
    );
    assert!(run.stats.counters["stage.kernel_ns"] > 0);
}

#[test]
fn traced_batch_produces_consistent_spans_and_exports() {
    let pairs = read_pairs(120, 3);
    let spec = SchemeSpec::global_affine(2, -1, -2, -1);
    let dispatch = DispatchPolicy::auto().observe(true).cache_mb(8).standard();
    let threads = 3;
    let sched = BatchScheduler::new(BatchCfg::threads(threads));
    let run = sched.align_pairs(&dispatch, &spec, &pairs);
    let stats = &run.stats;

    // Every stage key exists (pre-seeded), and the hot ones are warm.
    for stage in Stage::ALL {
        assert!(
            stats.counters.contains_key(stage.counter_key()),
            "missing {}",
            stage.counter_key()
        );
    }
    for key in ["stage.hash_ns", "stage.gather_ns", "stage.merge_ns"] {
        assert!(stats.counters[key] > 0, "{key} should be non-zero");
    }

    // Spans are sorted by (worker, start) and never overlap in a lane.
    assert!(!stats.spans.is_empty());
    for w in stats.spans.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        assert!((a.worker, a.start_ns) <= (b.worker, b.start_ns), "sorted");
        if a.worker == b.worker {
            assert!(
                a.start_ns + a.dur_ns <= b.start_ns,
                "lane {} overlaps: {a:?} vs {b:?}",
                a.worker
            );
        }
    }

    // Chrome trace: JSON array, balanced B/E, one lane per worker.
    let trace = chrome_trace(&stats.spans);
    assert!(trace.starts_with('[') && trace.trim_end().ends_with(']'));
    let begins = trace.matches("\"ph\":\"B\"").count();
    let ends = trace.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "every B needs an E");
    assert_eq!(begins, stats.spans.len());
    assert!(trace.contains("\"coordinator\""));

    // Prometheus: the per-(backend, bin) kernel latency histogram and
    // the per-shard cache gauges are present.
    let registry = dispatch.metrics().expect("observe=true builds a registry");
    let text = prometheus_text(&registry.snapshot());
    assert!(text.contains("anyseq_stage_duration_ns_bucket"));
    assert!(text.contains("stage=\"kernel\""));
    assert!(text.contains("backend=\"simd\"") || text.contains("backend=\"scalar\""));
    assert!(text.contains("anyseq_batch_pairs_total"));
    assert!(text.contains("anyseq_cache_shard_entries"));
}

#[test]
fn registry_accumulates_across_batches() {
    let pairs = read_pairs(30, 4);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = DispatchPolicy::auto().observe(true).standard();
    let sched = BatchScheduler::new(BatchCfg::threads(2));
    let registry = dispatch.metrics().unwrap();

    sched.score_pairs(&dispatch, &spec, &pairs);
    let one = registry.snapshot();
    sched.score_pairs(&dispatch, &spec, &pairs);
    let two = registry.snapshot();

    let key = ("anyseq_batches_total", String::new());
    assert_eq!(one.counters.get(&key).copied(), Some(1));
    assert_eq!(two.counters.get(&key).copied(), Some(2));
    let pairs_key = ("anyseq_batch_pairs_total", String::new());
    assert_eq!(
        two.counters.get(&pairs_key).copied(),
        Some(2 * pairs.len() as u64)
    );
}

#[test]
fn observability_off_is_invisible() {
    let pairs = read_pairs(30, 5);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let dispatch = Dispatch::standard(Policy::Auto);
    assert!(dispatch.metrics().is_none(), "off by default");
    let run = BatchScheduler::new(BatchCfg::threads(2)).score_pairs(&dispatch, &spec, &pairs);
    assert!(run.stats.spans.is_empty());
    assert!(
        !run.stats.counters.keys().any(|k| k.starts_with("stage.")),
        "no stage counters without observe: {:?}",
        run.stats.counters
    );
}
